"""Quickstart: build a small circuit, run ER and BENR, compare the output.

Run with::

    python examples/quickstart.py

This is the 5-minute tour of the public API:

1. build a :class:`repro.Circuit` programmatically (an RC low-pass driven
   by a pulse, loaded by a diode clamp so the circuit is nonlinear);
2. run the transient analysis with the paper's exponential
   Rosenbrock-Euler method (``method="er"``) and with the conventional
   backward Euler + Newton-Raphson baseline (``method="benr"``);
3. print the per-method statistics (steps, LU factorizations, average
   Krylov dimension) and the waveform agreement.
"""

import numpy as np

import repro


def build_circuit() -> repro.Circuit:
    ckt = repro.Circuit("quickstart rc + diode clamp")
    ckt.add_vsource("Vin", "in", "0",
                    repro.PULSE(0.0, 1.5, 50e-12, 20e-12, 20e-12, 0.4e-9, 1.0e-9))
    ckt.add_resistor("R1", "in", "mid", 500.0)
    ckt.add_capacitor("C1", "mid", "0", 2e-12)
    ckt.add_resistor("R2", "mid", "out", 500.0)
    ckt.add_capacitor("C2", "out", "0", 1e-12)
    # diode clamp to ~0.7 V makes the circuit nonlinear
    ckt.add_diode("D1", "out", "0", repro.DiodeModel(name="DCLAMP", isat=1e-14, cj0=2e-15))
    return ckt


def main() -> None:
    circuit = build_circuit()
    t_stop = 2e-9

    results = {}
    for method in ("er", "er-c", "benr"):
        results[method] = repro.simulate(
            circuit, method, t_stop=t_stop, h_init=5e-12, err_budget=1e-4,
            observe_nodes=["out"],
        )

    print("=== per-method statistics ===")
    for method, result in results.items():
        stats = result.stats
        print(f"{result.method:8s} steps={stats.num_steps:5d} "
              f"LU={stats.num_lu_factorizations:5d} "
              f"#NRa={stats.average_newton_iterations:5.2f} "
              f"#ma={stats.average_krylov_dimension:5.2f} "
              f"runtime={stats.runtime_seconds:6.3f}s")

    print("\n=== waveform agreement at v(out) ===")
    reference = repro.Signal.from_result(results["benr"], "out")
    for method in ("er", "er-c"):
        signal = repro.Signal.from_result(results[method], "out")
        cmp = repro.compare_waveforms(signal, reference)
        print(f"{results[method].method:8s} max|err| = {cmp.max_abs_error:.3e} V, "
              f"RMS err = {cmp.rms_error:.3e} V")

    v_out = results["er"].voltage("out")
    print(f"\npeak v(out) under ER: {np.max(v_out):.3f} V "
          f"(diode clamps the 1.5 V input to about a forward drop)")


if __name__ == "__main__":
    main()
