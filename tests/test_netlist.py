"""Unit tests for the Circuit container (repro.circuit.netlist)."""

import pytest

from repro.circuit.devices.diode import DiodeModel
from repro.circuit.devices.mosfet import MOSFETModel
from repro.circuit.netlist import Circuit
from repro.circuit.sources import DC


class TestNodeBookkeeping:
    def test_nodes_registered_in_order(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_resistor("R2", "b", "c", 1.0)
        assert ckt.node_names == ["a", "b", "c"]
        assert ckt.num_nodes == 3

    def test_ground_aliases_not_registered(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.add_resistor("R2", "b", "gnd", 1.0)
        ckt.add_resistor("R3", "c", "GND", 1.0)
        assert ckt.node_names == ["a", "b", "c"]

    def test_is_ground(self):
        assert Circuit.is_ground("0")
        assert Circuit.is_ground("gnd")
        assert Circuit.is_ground("GND")
        assert not Circuit.is_ground("out")


class TestElementRegistration:
    def test_duplicate_names_rejected(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.add_capacitor("R1", "a", "b", 1e-12)

    def test_devices_and_elements_kept_separately(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.add_diode("D1", "a", "0")
        assert len(ckt.elements) == 1
        assert len(ckt.devices) == 1
        assert ckt.num_devices == 1

    def test_add_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            Circuit().add(42)

    def test_add_returns_circuit_for_chaining(self):
        ckt = Circuit()
        from repro.circuit.elements import Resistor

        assert ckt.add(Resistor("R1", "a", "0", 1.0)) is ckt

    def test_convenience_constructors_return_elements(self):
        ckt = Circuit()
        r = ckt.add_resistor("R1", "a", "0", 10.0)
        c = ckt.add_capacitor("C1", "a", "0", 1e-12)
        v = ckt.add_vsource("V1", "a", "0", 1.0)
        m = ckt.add_mosfet("M1", "a", "b", "0", "0", MOSFETModel())
        assert r.resistance == 10.0
        assert c.capacitance == 1e-12
        assert isinstance(v.waveform, DC)
        assert m.nodes == ("a", "b", "0", "0")


class TestModels:
    def test_model_roundtrip(self):
        ckt = Circuit()
        model = DiodeModel(name="DX", isat=1e-12)
        ckt.add_model(model)
        assert ckt.get_model("dx") is model
        assert ckt.get_model("DX") is model

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            Circuit().get_model("nope")

    def test_model_requires_name(self):
        class Nameless:
            name = ""

        with pytest.raises(ValueError):
            Circuit().add_model(Nameless())


class TestInitialConditions:
    def test_set_and_store(self):
        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        ckt.set_initial_condition("a", 0.5)
        assert ckt.initial_conditions == {"a": 0.5}

    def test_ground_ic_rejected(self):
        with pytest.raises(ValueError):
            Circuit().set_initial_condition("0", 1.0)


class TestSummary:
    def test_counts(self):
        ckt = Circuit("demo")
        ckt.add_resistor("R1", "a", "b", 1.0)
        ckt.add_resistor("R2", "b", "0", 1.0)
        ckt.add_capacitor("C1", "a", "0", 1e-12)
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_diode("D1", "b", "0")
        summary = ckt.summary()
        assert summary["nodes"] == 2
        assert summary["linear_elements"] == 4
        assert summary["nonlinear_devices"] == 1
        assert summary["Resistor"] == 2
        assert summary["Diode"] == 1

    def test_repr_mentions_counts(self):
        ckt = Circuit("demo")
        ckt.add_resistor("R1", "a", "0", 1.0)
        assert "demo" in repr(ckt)
        assert "elements=1" in repr(ckt)


class TestBuild:
    def test_build_returns_mna_system(self):
        from repro.circuit.mna import MNASystem

        ckt = Circuit()
        ckt.add_resistor("R1", "a", "0", 1.0)
        assert isinstance(ckt.build(), MNASystem)

    def test_empty_circuit_cannot_build(self):
        with pytest.raises(ValueError):
            Circuit().build()
