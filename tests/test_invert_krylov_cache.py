"""Eviction behaviour of the bounded IKSBasis propagator cache.

The ``(m, h)``-keyed propagator cache (LRU, 128 entries) must stay
bounded under step-size churn -- a long adaptive run visits one ``h`` per
step -- and evicted entries must recompute to bit-identical values on
re-access (the propagator is a pure function of the Hessenberg and
``h``).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.invert_krylov import IKSBasis, InvertKrylovMEVP
from repro.linalg.sparse_lu import factorize


@pytest.fixture()
def basis():
    """A converged invert-Krylov basis on a small RC-like system."""
    rng = np.random.default_rng(42)
    n = 30
    # diagonally dominant G (resistive mesh flavour) and diagonal C
    A = rng.uniform(-1.0, 0.0, size=(n, n))
    np.fill_diagonal(A, 0.0)
    G = sp.csc_matrix(A + np.diag(2.0 + np.abs(A).sum(axis=1)))
    C = sp.diags(rng.uniform(0.5, 2.0, size=n), format="csc")
    v = rng.standard_normal(n)
    iks = InvertKrylovMEVP(C, G, factorize(G), max_dim=n)
    return iks.build(v, h=1e-3, tol=1e-9)


class TestPropagatorCacheEviction:
    def test_cache_stays_bounded_under_h_churn(self, basis):
        cap = IKSBasis.PROPAGATOR_CACHE_MAX
        h_values = [1e-3 * (1.0 + 0.01 * k) for k in range(3 * cap)]
        for h in h_values:
            basis.mevp(h)
        assert len(basis._propagator_cache) <= cap
        # the survivors are exactly the most recent h values
        surviving = {h for (_, h) in basis._propagator_cache}
        expected_tail = set(h_values[-len(surviving):])
        assert surviving == expected_tail

    def test_evicted_entry_recomputes_bit_identically(self, basis):
        cap = IKSBasis.PROPAGATOR_CACHE_MAX
        h0 = 1e-3
        first = basis.mevp(h0).copy()
        key0 = (basis.dimension, float(h0))
        assert key0 in basis._propagator_cache
        # churn far past the cap so h0 is evicted
        for k in range(cap + 10):
            basis.mevp(1e-3 * (2.0 + 0.01 * k))
        assert key0 not in basis._propagator_cache
        again = basis.mevp(h0)
        assert np.array_equal(first, again)
        assert key0 in basis._propagator_cache

    def test_reaccess_refreshes_lru_position(self, basis):
        cap = IKSBasis.PROPAGATOR_CACHE_MAX
        h_hot = 1e-3
        basis.mevp(h_hot)
        # keep touching h_hot while churning; it must never be evicted
        for k in range(2 * cap):
            basis.mevp(1e-3 * (3.0 + 0.01 * k))
            basis.mevp(h_hot)
        assert (basis.dimension, float(h_hot)) in basis._propagator_cache

    def test_residual_checks_share_the_bound(self, basis):
        """residual_norm goes through the same cache and must not grow it."""
        cap = IKSBasis.PROPAGATOR_CACHE_MAX
        for k in range(3 * cap):
            basis.residual_norm(1e-3 * (1.0 + 0.02 * k))
        assert len(basis._propagator_cache) <= cap
