"""Tests for the simulator façade, options and result containers."""

import numpy as np
import pytest

from repro.circuit.netlist import Circuit
from repro.circuit.sources import PWL
from repro.core.options import SimOptions
from repro.core.results import (
    ObservableSummary,
    RunStatistics,
    SimulationResult,
    StepRecord,
)
from repro.core.simulator import TransientSimulator, simulate


def rc_circuit():
    ckt = Circuit("rc")
    ckt.add_vsource("Vin", "in", "0", PWL([(0.0, 0.0), (0.1e-9, 1.0)]))
    ckt.add_resistor("R1", "in", "out", 1000.0)
    ckt.add_capacitor("C1", "out", "0", 1e-12)
    return ckt


class TestSimOptions:
    def test_defaults_validate(self):
        SimOptions()  # must not raise

    def test_invalid_time_span(self):
        with pytest.raises(ValueError):
            SimOptions(t_stop=0.0)
        with pytest.raises(ValueError):
            SimOptions(t_stop=1e-9, t_start=2e-9)

    def test_invalid_controller_parameters(self):
        with pytest.raises(ValueError):
            SimOptions(alpha=1.5)
        with pytest.raises(ValueError):
            SimOptions(beta=0.5)
        with pytest.raises(ValueError):
            SimOptions(err_budget=0.0)
        with pytest.raises(ValueError):
            SimOptions(krylov_max_dim=1)

    def test_resolved_defaults(self):
        opts = SimOptions(t_stop=1e-9)
        assert opts.resolved_h_init() == pytest.approx(1e-12)
        assert opts.resolved_h_max() == pytest.approx(1e-10)
        assert opts.span == pytest.approx(1e-9)

    def test_with_updates_returns_new_object(self):
        opts = SimOptions(t_stop=1e-9)
        updated = opts.with_updates(t_stop=2e-9, correction=True)
        assert updated.t_stop == 2e-9
        assert updated.correction is True
        assert opts.t_stop == 1e-9  # original untouched


class TestTransientSimulatorFacade:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown integration method"):
            TransientSimulator(rc_circuit(), method="rk4")

    def test_method_aliases(self):
        sim = TransientSimulator(rc_circuit(), method="backward-euler")
        assert sim.integrator.name == "BENR"
        sim2 = TransientSimulator(rc_circuit(), method="bdf2")
        assert sim2.integrator.name == "Gear2"

    def test_erc_method_sets_correction(self):
        sim = TransientSimulator(rc_circuit(), method="er-c")
        assert sim.options.correction is True
        assert sim.integrator.name == "ER-C"

    def test_plain_er_clears_stale_correction_flag(self):
        sim = TransientSimulator(rc_circuit(), method="er",
                                 options=SimOptions(correction=True))
        assert sim.options.correction is False
        assert sim.integrator.name == "ER"

    def test_accepts_prebuilt_mna(self):
        mna = rc_circuit().build()
        result = simulate(mna, "er", t_stop=1e-9, h_init=1e-11)
        assert result.stats.completed

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            TransientSimulator(42)

    def test_run_dc_cached(self):
        sim = TransientSimulator(rc_circuit(), "er", SimOptions(t_stop=1e-9))
        dc1 = sim.run_dc()
        dc2 = sim.run_dc()
        assert dc1 is dc2

    def test_explicit_x0_skips_dc(self):
        mna = rc_circuit().build()
        x0 = np.zeros(mna.n)
        x0[mna.node_index("out")] = 0.37
        result = simulate(mna, "benr", t_stop=0.05e-9, h_init=1e-12, x0=x0)
        assert result.voltage("out")[0] == pytest.approx(0.37)

    def test_option_overrides_in_simulate(self):
        result = simulate(rc_circuit(), "er", t_stop=0.5e-9, h_init=1e-11,
                          err_budget=1e-3)
        assert result.stats.completed
        assert result.time_array[-1] == pytest.approx(0.5e-9)


class TestSimulationResult:
    def test_observed_nodes_without_state_storage(self):
        result = simulate(rc_circuit(), "er", t_stop=1e-9, h_init=1e-11,
                          store_states=False, observe_nodes=["out"])
        waveform = result.voltage("out")
        assert len(waveform) == len(result.times)
        with pytest.raises(RuntimeError):
            _ = result.state_array
        with pytest.raises(KeyError):
            result.voltage("in")

    def test_state_storage_gives_all_nodes(self):
        result = simulate(rc_circuit(), "er", t_stop=1e-9, h_init=1e-11)
        assert result.state_array.shape[0] == len(result.times)
        assert len(result.voltage("in")) == len(result.times)
        assert len(result.branch_current("Vin")) == len(result.times)

    def test_ground_voltage_is_zero(self):
        result = simulate(rc_circuit(), "er", t_stop=0.2e-9, h_init=1e-11)
        np.testing.assert_array_equal(result.voltage("0"), 0.0)

    def test_times_monotone_and_within_span(self):
        result = simulate(rc_circuit(), "benr", t_stop=1e-9, h_init=1e-12)
        times = result.time_array
        assert np.all(np.diff(times) > 0)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(1e-9)

    def test_step_sizes_match_time_differences(self):
        result = simulate(rc_circuit(), "er", t_stop=1e-9, h_init=1e-11)
        np.testing.assert_allclose(result.step_sizes(), np.diff(result.time_array),
                                   rtol=1e-9)

    def test_summary_keys(self):
        result = simulate(rc_circuit(), "er", t_stop=0.2e-9, h_init=1e-11)
        summary = result.summary()
        for key in ("#step", "#ma", "#LU", "RT(s)", "completed", "num_points"):
            assert key in summary

    def test_breakpoints_are_hit_exactly(self):
        """The time loop must land exactly on source breakpoints so the
        piecewise-linear input assumption of Eq. 13 holds."""
        result = simulate(rc_circuit(), "er", t_stop=1e-9, h_init=0.3e-10)
        assert np.any(np.isclose(result.time_array, 0.1e-9, rtol=0, atol=1e-18))


class TestObservableSummary:
    def test_empty_summary(self):
        summary = ObservableSummary()
        d = summary.as_dict()
        assert d["num_points"] == 0
        assert np.isnan(d["final"])

    def test_known_series(self):
        # v(t): 0 @ t=0, 2 @ t=1, 2 @ t=2 -- trapezoids by hand:
        # energy = 0.5*(0+4)*1 + 0.5*(4+4)*1 = 6
        summary = ObservableSummary.from_series([0.0, 1.0, 2.0],
                                                [0.0, 2.0, 2.0])
        assert summary.num_points == 3
        assert summary.minimum == 0.0
        assert summary.maximum == 2.0
        assert summary.final == 2.0
        assert summary.final_time == 2.0
        assert summary.energy == pytest.approx(6.0)
        assert summary.l2_norm == pytest.approx(np.sqrt(8.0))

    def test_incremental_matches_replay(self):
        rng = np.random.default_rng(11)
        times = np.cumsum(rng.uniform(0.1, 1.0, size=50))
        values = rng.standard_normal(50)
        streamed = ObservableSummary()
        for t, v in zip(times, values):
            streamed.update(t, v)
        assert streamed.as_dict() == \
            ObservableSummary.from_series(times, values).as_dict()


class TestStreamingSummaries:
    """store_states=False must lose nothing the summaries promise."""

    OPTS = dict(t_stop=1e-9, h_init=1e-11, observe_nodes=["out"])

    def test_streaming_summaries_bit_for_bit_match_stored_run(self):
        stored = simulate(rc_circuit(), "er", **self.OPTS)
        streamed = simulate(rc_circuit(), "er", store_states=False,
                            **self.OPTS)
        replayed = ObservableSummary.from_series(stored.times,
                                                 stored.voltage("out"))
        assert streamed.summaries["out"].as_dict() == replayed.as_dict()

    def test_final_state_survives_streaming(self):
        stored = simulate(rc_circuit(), "benr", **self.OPTS)
        streamed = simulate(rc_circuit(), "benr", store_states=False,
                            **self.OPTS)
        np.testing.assert_array_equal(streamed.final_state,
                                      stored.final_state)

    def test_summary_carries_observables(self):
        result = simulate(rc_circuit(), "er", store_states=False,
                          **self.OPTS)
        observables = result.summary()["observables"]
        assert set(observables) == {"out"}
        for key in ("num_points", "min", "max", "final", "l2", "energy"):
            assert key in observables["out"]

    def test_stored_run_summaries_match_its_own_series(self):
        result = simulate(rc_circuit(), "trap", **self.OPTS)
        replayed = ObservableSummary.from_series(result.times,
                                                 result.voltage("out"))
        assert result.summaries["out"].as_dict() == replayed.as_dict()


class TestRunStatistics:
    def test_averages_empty(self):
        stats = RunStatistics()
        assert stats.average_newton_iterations == 0.0
        assert stats.average_krylov_dimension == 0.0
        assert stats.peak_factor_nnz == 0

    def test_as_dict_complete(self):
        stats = RunStatistics(method="ER", num_steps=10, total_newton_iterations=0)
        d = stats.as_dict()
        assert d["method"] == "ER"
        assert d["#step"] == 10

    def test_record_step_accumulates(self):
        mna = rc_circuit().build()
        result = SimulationResult(mna, "ER")
        result.record_point(0.0, np.zeros(mna.n))
        result.record_step(StepRecord(t=1e-12, h=1e-12, rejections=2,
                                      newton_iterations=3,
                                      krylov_dimensions=[5, 7]))
        assert result.stats.num_steps == 1
        assert result.stats.num_rejections == 2
        assert result.stats.total_newton_iterations == 3
        assert result.steps[0].average_krylov_dimension == pytest.approx(6.0)
