"""Unit tests for the phi-functions (repro.linalg.phi)."""

import math

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.phi import expm_dense, phi_functions, phi_scalar, phi_times_vector


def random_stable(n, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) * scale
    return A - (np.abs(A).sum() / n + 1.0) * np.eye(n)


class TestPhiScalar:
    def test_phi0_is_exp(self):
        assert phi_scalar(1.3, 0) == pytest.approx(math.exp(1.3))

    def test_phi1_closed_form(self):
        z = -2.0
        assert phi_scalar(z, 1) == pytest.approx((math.exp(z) - 1) / z)

    def test_phi2_closed_form(self):
        z = 0.7
        expected = (math.exp(z) - 1 - z) / z ** 2
        assert phi_scalar(z, 2) == pytest.approx(expected)

    def test_small_argument_series(self):
        # direct formula would suffer cancellation; series value is 1/k! at 0
        assert phi_scalar(0.0, 1) == pytest.approx(1.0)
        assert phi_scalar(0.0, 2) == pytest.approx(0.5)
        assert phi_scalar(1e-8, 3) == pytest.approx(1.0 / 6.0, rel=1e-6)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            phi_scalar(1.0, -1)

    @given(st.floats(min_value=-5.0, max_value=5.0), st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_recurrence_holds(self, z, k):
        # phi_{k+1}(z) = (phi_k(z) - 1/k!) / z for z != 0
        if abs(z) < 1e-3:
            return
        lhs = phi_scalar(z, k + 1)
        rhs = (phi_scalar(z, k) - 1.0 / math.factorial(k)) / z
        assert lhs == pytest.approx(rhs, rel=1e-7, abs=1e-12)


class TestPhiMatrices:
    def test_phi0_matches_scipy_expm(self):
        A = random_stable(6, seed=1)
        np.testing.assert_allclose(phi_functions(A, 0)[0], sla.expm(A), rtol=1e-10)

    def test_phi1_definition(self):
        A = random_stable(5, seed=2)
        phi1 = phi_functions(A, 1)[1]
        expected = np.linalg.solve(A, sla.expm(A) - np.eye(5))
        np.testing.assert_allclose(phi1, expected, rtol=1e-8)

    def test_phi2_definition(self):
        A = random_stable(5, seed=3)
        phi2 = phi_functions(A, 2)[2]
        expected = np.linalg.solve(A, np.linalg.solve(A, sla.expm(A) - np.eye(5)) - np.eye(5))
        np.testing.assert_allclose(phi2, expected, rtol=1e-7)

    def test_singular_argument_falls_back_to_series(self):
        A = np.zeros((3, 3))
        phis = phi_functions(A, 2)
        np.testing.assert_allclose(phis[0], np.eye(3))
        np.testing.assert_allclose(phis[1], np.eye(3))
        np.testing.assert_allclose(phis[2], 0.5 * np.eye(3), atol=1e-12)

    def test_nilpotent_singular_matrix(self):
        A = np.array([[0.0, 1.0], [0.0, 0.0]])
        phi1 = phi_functions(A, 1)[1]
        # phi1(A) = I + A/2 for nilpotent A of index 2
        np.testing.assert_allclose(phi1, np.eye(2) + A / 2, atol=1e-10)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            phi_functions(np.zeros((2, 3)), 1)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            phi_functions(np.eye(2), -1)

    def test_scalar_consistency(self):
        z = -1.7
        A = np.array([[z]])
        phis = phi_functions(A, 3)
        for k in range(4):
            assert phis[k][0, 0] == pytest.approx(phi_scalar(z, k), rel=1e-9)


class TestPhiTimesVector:
    @pytest.mark.parametrize("order", [0, 1, 2, 3])
    def test_matches_full_matrix_product(self, order):
        A = random_stable(7, seed=4)
        v = np.random.default_rng(5).standard_normal(7)
        direct = phi_functions(A, order)[order] @ v
        np.testing.assert_allclose(phi_times_vector(A, v, order), direct, rtol=1e-8, atol=1e-12)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            phi_times_vector(np.eye(3), np.ones(4), 1)

    def test_expm_dense_wrapper(self):
        A = random_stable(4, seed=6)
        np.testing.assert_allclose(expm_dense(A), sla.expm(A))
