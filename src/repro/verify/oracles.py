"""Analytic oracle registry.

An :class:`Oracle` pins one scenario (tiny circuit + drive + method-free
options) to a *reference waveform* the integrators are checked against:

* **closed-form** oracles evaluate the exact transient response --
  first-order RC/RL networks under step/ramp/pulse/sin drive (exact
  per-segment exponential propagation), the series RLC damped
  oscillation (superposition of unit-ramp responses over the drive's
  slope changes), and the two-source superposition node (sum of the
  single-source closed forms);
* **self-reference** oracles, for circuits without a closed form, run a
  high-resolution BENR transient (step size ~100x below the scenario's)
  and interpolate it -- the classic SPICE convergence reference.

The exact formulas are implemented against the *idealized* ODE of each
oracle circuit, sharing no code with the MNA/Krylov stack they check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.scenario import CircuitSpec
from repro.circuit.sources import Waveform

__all__ = [
    "Oracle",
    "register_oracle",
    "get_oracle",
    "oracle_names",
    "all_oracles",
    "pwl_profile",
    "first_order_response",
    "rlc_ramp_response",
]

#: per-method absolute tolerance bands against an exact reference [V]
#: (first-order BENR / FE carry visible damping error at default LTE
#: tolerances; TR / Gear2 are second order; ER is exact up to the MEVP
#: tolerance on linear circuits; expm-std pays for the C regularization)
DEFAULT_METHOD_BANDS: Dict[str, float] = {
    "benr": 2.5e-2,
    "fe": 2.5e-2,
    "trap": 6e-3,
    "gear2": 6e-3,
    "er": 2e-3,
    "er-c": 2e-3,
    "expm-std": 1.2e-2,
}


# -- exact LTI building blocks -----------------------------------------------------------


def pwl_profile(waveform: Waveform, t_end: float) -> List[Tuple[float, float]]:
    """Return the ``(time, value)`` knots of an exactly-PWL waveform.

    Includes ``t=0`` and ``t=t_end``; only valid when
    ``waveform.is_piecewise_linear`` is True (the values between adjacent
    knots then interpolate linearly with no error).
    """
    if not waveform.is_piecewise_linear:
        raise ValueError(f"{waveform!r} is not piecewise linear")
    times = [0.0] + list(waveform.breakpoints(t_end)) + [t_end]
    times = sorted(set(t for t in times if 0.0 <= t <= t_end))
    return [(t, waveform.value(t)) for t in times]


def first_order_response(
    ts: np.ndarray,
    profile: Sequence[Tuple[float, float]],
    tau: float,
    gain: float = 1.0,
    y0: Optional[float] = None,
) -> np.ndarray:
    """Exact response of ``tau y' + y = gain * u(t)`` to a PWL input.

    Within a segment where ``u(t) = u0 + s (t - t0)`` the exact solution
    is ``y = y_p(t) + (y(t0) - y_p(t0)) exp(-(t - t0)/tau)`` with the
    ramp particular solution ``y_p = gain (u(t) - s tau)``; the segment
    endpoints are chained exactly, so the only error is rounding.

    ``y0`` defaults to the DC equilibrium for ``u(0)`` (``gain * u(0)``),
    matching a simulator that starts from the DC operating point.
    """
    ts = np.asarray(ts, dtype=float)
    knots = list(profile)
    if len(knots) < 1:
        raise ValueError("profile needs at least one knot")
    y_start = gain * knots[0][1] if y0 is None else float(y0)
    out = np.empty_like(ts)
    order = np.argsort(ts, kind="stable")
    idx = 0
    for k in range(len(knots)):
        t0, u0 = knots[k]
        if k + 1 < len(knots):
            t1, u1 = knots[k + 1]
            s = (u1 - u0) / (t1 - t0)
        else:
            t1, s = math.inf, 0.0

        def y_at(t: float) -> float:
            y_p = gain * (u0 + s * (t - t0) - s * tau)
            y_p0 = gain * (u0 - s * tau)
            return y_p + (y_start - y_p0) * math.exp(-(t - t0) / tau)

        while idx < len(ts) and ts[order[idx]] <= t1:
            t = ts[order[idx]]
            out[order[idx]] = y_start if t <= t0 else y_at(t)
            idx += 1
        if math.isinf(t1):
            break
        y_start = y_at(t1)
    while idx < len(ts):  # pragma: no cover - ts beyond the profile's last knot
        out[order[idx]] = y_start
        idx += 1
    return out


def rlc_ramp_response(t: np.ndarray, omega0: float, zeta: float) -> np.ndarray:
    """Unit-slope ramp response of ``v'' + 2 zeta w0 v' + w0^2 v = w0^2 u``.

    Underdamped closed form (``zeta < 1``), zero initial conditions::

        v(t) = t - 2 zeta/w0
             + e^{-zeta w0 t} [ (2 zeta/w0) cos(wd t)
                                + ((2 zeta^2 - 1)/wd) sin(wd t) ]

    with ``wd = w0 sqrt(1 - zeta^2)``; zero for ``t <= 0``.
    """
    if not (0.0 < zeta < 1.0):
        raise ValueError("rlc_ramp_response covers the underdamped case only")
    t = np.asarray(t, dtype=float)
    wd = omega0 * math.sqrt(1.0 - zeta * zeta)
    tp = np.maximum(t, 0.0)
    decay = np.exp(-zeta * omega0 * tp)
    v = (tp - 2.0 * zeta / omega0
         + decay * ((2.0 * zeta / omega0) * np.cos(wd * tp)
                    + ((2.0 * zeta * zeta - 1.0) / wd) * np.sin(wd * tp)))
    return np.where(t <= 0.0, 0.0, v)


def second_order_pwl_response(
    ts: np.ndarray,
    profile: Sequence[Tuple[float, float]],
    omega0: float,
    zeta: float,
) -> np.ndarray:
    """Exact unity-DC-gain second-order response to a PWL input.

    A PWL input starting from ``u(0) = 0`` is the superposition of ramps
    ``u(t) = sum_k ds_k * max(t - t_k, 0)`` over its slope changes
    ``ds_k``, so the response is the same superposition of
    :func:`rlc_ramp_response` terms (zero initial conditions).
    """
    ts = np.asarray(ts, dtype=float)
    knots = list(profile)
    if knots and abs(knots[0][1]) > 0.0:
        raise ValueError("second_order_pwl_response assumes u(0) = 0")
    out = np.zeros_like(ts)
    prev_slope = 0.0
    for k in range(len(knots)):
        t0 = knots[k][0]
        if k + 1 < len(knots):
            t1, u1 = knots[k + 1]
            slope = (u1 - knots[k][1]) / (t1 - t0)
        else:
            slope = 0.0
        ds = slope - prev_slope
        if ds != 0.0:
            out = out + ds * rlc_ramp_response(ts - t0, omega0, zeta)
        prev_slope = slope
    return out


# -- the oracle record and registry ---------------------------------------------------------


@dataclass(frozen=True)
class Oracle:
    """One reference scenario: circuit + horizon + exact (or self-) reference."""

    name: str
    circuit: CircuitSpec
    #: node whose waveform the reference describes
    node: str
    t_stop: float
    h_init: float
    #: "closed-form" | "self-reference"
    kind: str = "closed-form"
    #: vectorized exact waveform (closed-form oracles)
    exact: Optional[Callable[[np.ndarray], np.ndarray]] = None
    #: reference method / step refinement (self-reference oracles)
    reference_method: str = "benr"
    reference_refine: float = 100.0
    #: per-method absolute tolerance bands; falls back to the defaults
    bands: Dict[str, float] = field(default_factory=dict)
    #: methods this oracle applies to (None = every singular-C-capable one)
    methods: Optional[Tuple[str, ...]] = None
    #: extra SimOptions overrides baked into the oracle's scenarios (e.g.
    #: a tightened ``mevp_tol`` where the Eq. 22 residual is a loose
    #: error bound, or an ``h_max`` cap for smooth sources whose local
    #: PWL-interpolation error the ER estimator does not monitor)
    options: Dict[str, object] = field(default_factory=dict)

    def tolerance(self, method: str) -> float:
        key = method.strip().lower()
        band = self.bands.get(key, DEFAULT_METHOD_BANDS.get(key))
        if band is None:
            raise KeyError(f"no tolerance band for method {method!r}")
        return band

    def reference(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the reference waveform on ``times``.

        Closed-form oracles evaluate their formula; self-reference
        oracles run the high-resolution reference transient and
        interpolate (the run is cached on first use).
        """
        if self.kind == "closed-form":
            if self.exact is None:
                raise ValueError(f"closed-form oracle {self.name!r} has no formula")
            return np.asarray(self.exact(np.asarray(times, dtype=float)))
        from repro.core.simulator import simulate  # local: avoid import cycle

        cached = _SELF_REFERENCE_CACHE.get(self.name)
        if cached is None:
            result = simulate(
                self.circuit.build(), self.reference_method,
                t_stop=self.t_stop, h_init=self.h_init / self.reference_refine,
                h_max=self.h_init / self.reference_refine,
            )
            if not result.stats.completed:
                raise RuntimeError(
                    f"self-reference run of oracle {self.name!r} failed: "
                    f"{result.stats.failure_reason}"
                )
            cached = (result.time_array, result.voltage(self.node))
            _SELF_REFERENCE_CACHE[self.name] = cached
        ref_t, ref_v = cached
        return np.interp(np.asarray(times, dtype=float), ref_t, ref_v)


_ORACLES: Dict[str, Oracle] = {}
_SELF_REFERENCE_CACHE: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}


def register_oracle(oracle: Oracle) -> Oracle:
    key = oracle.name.strip().lower()
    if not key:
        raise ValueError("oracle name must be non-empty")
    if key in _ORACLES:
        raise ValueError(f"oracle {key!r} is already registered")
    _ORACLES[key] = oracle
    return oracle


def get_oracle(name: str) -> Oracle:
    key = name.strip().lower()
    if key not in _ORACLES:
        known = ", ".join(sorted(_ORACLES))
        raise KeyError(f"unknown oracle {name!r}; registered: {known}")
    return _ORACLES[key]


def oracle_names() -> List[str]:
    return sorted(_ORACLES)


def all_oracles() -> List[Oracle]:
    return [_ORACLES[name] for name in oracle_names()]


# -- built-in oracles ---------------------------------------------------------------------


def _spec(factory: str, **params) -> CircuitSpec:
    return CircuitSpec(factory=factory, params=params,
                       module="repro.verify.circuits")


def _register_builtins() -> None:
    from repro.verify.circuits import make_drive

    t_stop, h_init = 3e-9, 2e-11

    # RC low-pass: tau = R C, unit DC gain, driven at node "in".
    r, c = 1000.0, 1e-12
    for source in ("step", "ramp", "pulse"):
        drive = make_drive(source, t_stop)
        profile = pwl_profile(drive, t_stop)
        register_oracle(Oracle(
            name=f"rc_{source}",
            circuit=_spec("verify_rc", r=r, c=c, source=source, t_stop=t_stop),
            node="out", t_stop=t_stop, h_init=h_init,
            exact=(lambda ts, profile=profile:
                   first_order_response(ts, profile, tau=r * c)),
        ))

    # RC under a sinusoid: exact forced + transient solution.
    sin_drive = make_drive("sin", t_stop)
    tau = r * c
    w = 2.0 * math.pi * sin_drive.freq
    amp, offset = sin_drive.amplitude, sin_drive.offset

    def rc_sin_exact(ts: np.ndarray) -> np.ndarray:
        ts = np.asarray(ts, dtype=float)
        wt = w * tau
        forced = offset + amp / (1.0 + wt * wt) * (np.sin(w * ts) - wt * np.cos(w * ts))
        v0 = offset  # DC operating point for u(0) = offset
        forced0 = offset - amp * wt / (1.0 + wt * wt)
        return forced + (v0 - forced0) * np.exp(-ts / tau)

    register_oracle(Oracle(
        name="rc_sin",
        circuit=_spec("verify_rc", r=r, c=c, source="sin", t_stop=t_stop),
        node="out", t_stop=t_stop, h_init=h_init, exact=rc_sin_exact,
        # a smooth source is only locally PWL: cap the step so the
        # input-interpolation error (which the linear-circuit ER error
        # estimator cannot see) stays inside the bands
        options={"h_max": h_init},
    ))

    # RL: the inductor current is first order (tau = L/R, gain 1/R); the
    # observed node "a" sits across the inductor: v_a = u - R i.
    rl_r, rl_l = 100.0, 10e-9
    for source in ("step", "ramp"):
        drive = make_drive(source, t_stop)
        profile = pwl_profile(drive, t_stop)

        def rl_exact(ts: np.ndarray, drive=drive, profile=profile) -> np.ndarray:
            ts = np.asarray(ts, dtype=float)
            current = first_order_response(ts, profile, tau=rl_l / rl_r,
                                           gain=1.0 / rl_r)
            u = np.array([drive.value(t) for t in ts])
            return u - rl_r * current

        register_oracle(Oracle(
            name=f"rl_{source}",
            circuit=_spec("verify_rl", r=rl_r, l=rl_l, source=source,
                          t_stop=t_stop),
            node="a", t_stop=t_stop, h_init=h_init, exact=rl_exact,
            # Gear2 starts up with one BE step, which dominates its error
            # at the sharp step edge -- same worst case as plain BENR
            bands={"gear2": 3e-2},
        ))

    # Series RLC: underdamped damped oscillation (zeta ~ 0.063 with the
    # factory defaults), exact by ramp superposition over the PWL drive.
    rlc_r, rlc_l, rlc_c = 20.0, 5e-9, 200e-15
    omega0 = 1.0 / math.sqrt(rlc_l * rlc_c)
    zeta = 0.5 * rlc_r * math.sqrt(rlc_c / rlc_l)
    for source in ("step", "ramp", "pulse"):
        drive = make_drive(source, t_stop)
        profile = pwl_profile(drive, t_stop)
        register_oracle(Oracle(
            name=f"rlc_{source}",
            circuit=_spec("verify_rlc", r=rlc_r, l=rlc_l, c=rlc_c,
                          source=source, t_stop=t_stop),
            node="out", t_stop=t_stop, h_init=h_init,
            exact=(lambda ts, profile=profile:
                   second_order_pwl_response(ts, profile, omega0, zeta)),
            # first-order methods damp the ringing heavily at default LTE
            # tolerances; ER stays exact *provided* the MEVP residual is
            # tightened -- the Eq. 22 bound is loose for oscillatory J,
            # so the default 1e-7 admits visible late-time damping
            # BDF2 is strongly damping (close to BENR on ringing); TR's
            # A-stability without L-damping tracks the oscillation best
            # of the implicit trio
            bands={"benr": 2e-1, "fe": 2e-1, "trap": 2e-2, "gear2": 1.5e-1,
                   "expm-std": 4e-2},
            options={"mevp_tol": 1e-10},
        ))

    # Superposition node: two current sources into one RC node; the
    # reference is the *sum* of the single-source closed forms.
    sp_r, sp_c, i_peak = 1000.0, 1e-12, 0.5e-3
    # rebuild the two drives through the same factory verify_superposition
    # uses, so the reference input is bit-identical to the simulated one
    ramp_profile = pwl_profile(make_drive("ramp", t_stop, amplitude=i_peak),
                               t_stop)
    pulse_profile = pwl_profile(make_drive("pulse", t_stop, amplitude=i_peak),
                                t_stop)

    def superposition_exact(ts: np.ndarray) -> np.ndarray:
        ts = np.asarray(ts, dtype=float)
        v1 = first_order_response(ts, ramp_profile, tau=sp_r * sp_c, gain=sp_r)
        v2 = first_order_response(ts, pulse_profile, tau=sp_r * sp_c, gain=sp_r)
        return v1 + v2

    register_oracle(Oracle(
        name="superposition",
        circuit=_spec("verify_superposition", r=sp_r, c=sp_c, i_peak=i_peak,
                      t_stop=t_stop),
        node="out", t_stop=t_stop, h_init=h_init, exact=superposition_exact,
    ))

    # Regular-C RC pair: no closed form registered -- this is the
    # high-resolution BENR self-reference, and the only oracle circuit
    # forward Euler and the standard-Krylov integrator can run.
    for source in ("ramp", "pulse", "sin"):
        register_oracle(Oracle(
            name=f"regular_rc_{source}",
            circuit=_spec("verify_regular_rc", source=source, t_stop=2e-9),
            node="b", t_stop=2e-9, h_init=2e-11,
            kind="self-reference", reference_method="benr",
            reference_refine=100.0,
            methods=("benr", "trap", "gear2", "er", "er-c", "fe", "expm-std"),
            options={"h_max": 2e-11} if source == "sin" else {},
        ))


_register_builtins()
