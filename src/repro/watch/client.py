"""Polling client layer of the watch dashboard.

The client wraps the service's observability surface -- ``/healthz``,
``/stats``, ``/metrics``, ``/campaigns`` and the per-campaign NDJSON
streams -- behind one call, :meth:`WatchClient.poll`, which returns a
:class:`FleetSnapshot`.  Rates (steps/sec, simulations/sec) cannot be
read off any single scrape; the client keeps a bounded history of
counter readings and differentiates successive polls, so a snapshot
carries both the instantaneous fleet state and short rate series ready
for sparklines.

Everything here is stdlib (``urllib``): the watch dashboard must attach
to any deployment without installing anything.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.telemetry.prometheus import ParsedMetrics, parse_text

__all__ = ["WatchClient", "FleetSnapshot", "WatchError"]

#: rate samples kept for sparklines (one per poll)
HISTORY_LENGTH = 120


class WatchError(RuntimeError):
    """The service could not be reached or answered malformed data."""


@dataclass
class FleetSnapshot:
    """One digested view of the fleet (the unit the renderers consume)."""

    url: str
    ts: float
    healthy: bool
    #: raw ``/stats`` document (queue depth, counters, workers, cache...)
    stats: Dict[str, object] = field(default_factory=dict)
    #: campaign progress entries from ``GET /campaigns``
    campaigns: List[Dict[str, object]] = field(default_factory=list)
    #: per-worker digests keyed by worker id (from ``/stats``)
    workers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: instantaneous rates derived from successive polls
    rates: Dict[str, float] = field(default_factory=dict)
    #: short rate series for sparklines, newest last
    history: Dict[str, List[float]] = field(default_factory=dict)
    #: error string when the poll failed (healthy is False then)
    error: Optional[str] = None

    # -- derived conveniences ----------------------------------------------------------

    @property
    def queue(self) -> Dict[str, int]:
        jobs = (self.stats.get("broker") or {}).get("jobs") or {}
        return {status: int(jobs.get(status, 0))
                for status in ("queued", "leased", "done", "failed")}

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self.stats.get("counters") or {})

    def fractions(self) -> Dict[str, float]:
        """Lifetime cache-hit and coalescing fractions from the counters."""
        counters = self.counters
        admitted = int(counters.get("admitted", 0))
        coalesced = int(counters.get("coalesced", 0))
        cache_answers = int(counters.get("cache_answers", 0))
        submissions = admitted + coalesced + cache_answers
        simulations = int(counters.get("simulations", 0))
        worker_hits = int(counters.get("worker_cache_hits", 0))
        handled = simulations + worker_hits
        out = {}
        if submissions:
            out["coalesced_or_cached"] = (coalesced + cache_answers) / submissions
        if handled:
            out["worker_cache_hit"] = worker_hits / handled
        return out

    @property
    def fleet(self) -> Optional[Dict[str, object]]:
        """The supervisor state from ``/stats["fleet"]`` (None when no
        supervisor is attached to the broker, or its state went stale)."""
        state = self.stats.get("fleet")
        return dict(state) if isinstance(state, dict) else None

    def alerts(self, max_queue_depth: Optional[int] = None,
               max_heartbeat_age: Optional[float] = None) -> List[str]:
        """Threshold violations in this snapshot, one line each.

        Backs ``python -m repro.watch --once --alert-*``: an empty list
        means all configured thresholds hold.  An unreachable service is
        not an alert (it is already exit 1 / ``healthy=False``).
        """
        out: List[str] = []
        if not self.healthy:
            return out
        if max_queue_depth is not None:
            queued = self.queue["queued"]
            if queued > max_queue_depth:
                out.append(f"queue depth {queued} exceeds "
                           f"--alert-queue-depth {max_queue_depth}")
        if max_heartbeat_age is not None:
            for worker_id in sorted(self.workers):
                age = self.workers[worker_id].get("heartbeat_age_seconds")
                if age is not None and float(age) > max_heartbeat_age:
                    out.append(
                        f"worker {worker_id} heartbeat is {float(age):.0f}s "
                        f"old (--alert-heartbeat-age {max_heartbeat_age:g})")
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON document printed by ``python -m repro.watch --once --json``."""
        return {
            "url": self.url,
            "ts": self.ts,
            "healthy": self.healthy,
            "error": self.error,
            "queue": self.queue,
            "counters": self.counters,
            "fractions": self.fractions(),
            "rates": self.rates,
            "history": self.history,
            "workers": self.workers,
            "campaigns": self.campaigns,
            "stats": self.stats,
        }


class WatchClient:
    """Polls one service front end and digests fleet snapshots."""

    def __init__(self, url: str, timeout: float = 10.0,
                 token: Optional[str] = None):
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        #: bearer token sent as ``Authorization`` on every request, for
        #: services running behind ``serve --auth-token``
        self.token = token
        #: (ts, cumulative totals) readings the rate derivation diffs
        self._readings: Deque[Tuple[float, Dict[str, float]]] = deque(
            maxlen=HISTORY_LENGTH + 1)
        self._rate_history: Dict[str, Deque[float]] = {}

    # -- transport ---------------------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        return {"Authorization": f"Bearer {self.token}"} if self.token else {}

    def _fetch(self, path: str) -> bytes:
        request = urllib.request.Request(self.url + path,
                                         headers=self._headers())
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raise WatchError(f"{self.url}{path}: HTTP {exc.code}") from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            raise WatchError(f"{self.url}{path}: {reason}") from exc

    def fetch_json(self, path: str) -> Dict[str, object]:
        try:
            return json.loads(self._fetch(path).decode("utf-8"))
        except ValueError as exc:
            raise WatchError(f"{self.url}{path}: invalid JSON: {exc}") from exc

    # -- endpoint wrappers -------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self.fetch_json("/healthz")

    def stats(self) -> Dict[str, object]:
        return self.fetch_json("/stats")

    def campaigns(self) -> List[Dict[str, object]]:
        return list(self.fetch_json("/campaigns").get("campaigns", []))

    def metrics(self) -> ParsedMetrics:
        return parse_text(self._fetch("/metrics").decode("utf-8"))

    def stream_campaign(self, campaign_id: str,
                        timeout: Optional[float] = None) \
            -> Iterator[Dict[str, object]]:
        """Yield NDJSON events of one campaign stream as they land."""
        request = urllib.request.Request(
            f"{self.url}/campaigns/{campaign_id}/stream",
            headers=self._headers())
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise WatchError(f"stream {campaign_id}: {exc}") from exc

    # -- the poll ----------------------------------------------------------------------

    #: cumulative series differentiated into per-second rates
    RATE_SOURCES = {
        "steps_per_sec": ("repro_integrator_steps_total", {}),
        "simulations_per_sec": ("repro_service_counter_total",
                                {"name": "simulations"}),
        "submissions_per_sec": ("repro_server_requests_total",
                                {"route": "scenarios"}),
        "lu_per_sec": ("repro_integrator_lu_factorizations_total", {}),
    }

    def poll(self) -> FleetSnapshot:
        """One full observation: never raises, degrades to healthy=False."""
        ts = time.time()
        try:
            stats = self.stats()
            metrics = self.metrics()
            campaigns = self.campaigns()
        except WatchError as exc:
            return FleetSnapshot(url=self.url, ts=ts, healthy=False,
                                 error=str(exc))
        totals = {
            key: metrics.total(name, **labels)
            for key, (name, labels) in self.RATE_SOURCES.items()
        }
        rates = self._derive_rates(ts, totals)
        return FleetSnapshot(
            url=self.url,
            ts=ts,
            healthy=True,
            stats=stats,
            campaigns=campaigns,
            workers=dict(stats.get("workers") or {}),
            rates=rates,
            history={key: list(series)
                     for key, series in self._rate_history.items()},
        )

    def _derive_rates(self, ts: float,
                      totals: Dict[str, float]) -> Dict[str, float]:
        rates: Dict[str, float] = {}
        if self._readings:
            prev_ts, prev_totals = self._readings[-1]
            dt = ts - prev_ts
            if dt > 0:
                for key, total in totals.items():
                    delta = total - prev_totals.get(key, 0.0)
                    if delta < 0.0:
                        # counter went backwards: a restarted fleet member;
                        # everything the new process has counted happened
                        # since the previous poll, so the new absolute level
                        # is the increase (Prometheus counter-reset rule)
                        delta = total
                    rates[key] = delta / dt
        self._readings.append((ts, totals))
        for key, value in rates.items():
            series = self._rate_history.setdefault(
                key, deque(maxlen=HISTORY_LENGTH))
            series.append(value)
        return rates
