"""Circuit substrate: netlist, elements, devices, sources, parser and MNA.

This subpackage implements everything a SPICE-like simulator needs *below*
the numerical integration layer:

* :mod:`repro.circuit.netlist` -- the :class:`Circuit` container and node
  bookkeeping.
* :mod:`repro.circuit.elements` -- linear elements (R, C, L, coupling
  capacitors, controlled sources) and independent sources.
* :mod:`repro.circuit.sources` -- time-domain waveforms (DC, PWL, PULSE,
  SIN, EXP) used by independent sources.
* :mod:`repro.circuit.devices` -- nonlinear devices (diode, MOSFET).
* :mod:`repro.circuit.parser` -- a SPICE-like text netlist parser.
* :mod:`repro.circuit.mna` -- modified nodal analysis assembly producing
  the sparse matrices ``C(x)``, ``G(x)``, the input matrix ``B`` and the
  vectors ``q(x)``, ``f(x)``, ``u(t)`` consumed by the integrators.
"""

from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.sources import (
    DC,
    PWL,
    PULSE,
    SIN,
    EXP,
    Waveform,
)
from repro.circuit.mna import MNASystem, EvalResult
from repro.circuit.parser import parse_netlist, NetlistSyntaxError

__all__ = [
    "Circuit",
    "GROUND",
    "DC",
    "PWL",
    "PULSE",
    "SIN",
    "EXP",
    "Waveform",
    "MNASystem",
    "EvalResult",
    "parse_netlist",
    "NetlistSyntaxError",
]
