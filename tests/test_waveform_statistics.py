"""Tests for waveform analysis (Fig. 2 machinery) and run statistics (Table I machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.statistics import compare_runs
from repro.analysis.waveform import Signal, compare_waveforms
from repro.core.results import RunStatistics, SimulationResult


class TestSignal:
    def test_basic_construction(self):
        sig = Signal([0.0, 1.0, 2.0], [0.0, 1.0, 4.0], name="x")
        assert len(sig) == 3
        assert sig.duration == 2.0
        assert sig.value_at(1.5) == pytest.approx(2.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Signal([0.0, 1.0], [1.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            Signal([0.0, 2.0, 1.0], [0.0, 0.0, 0.0])

    def test_resample_interpolates(self):
        sig = Signal([0.0, 1.0], [0.0, 2.0])
        resampled = sig.resample([0.0, 0.25, 0.5, 1.0])
        np.testing.assert_allclose(resampled.values, [0.0, 0.5, 1.0, 2.0])

    def test_from_result(self):
        from repro.circuit.netlist import Circuit
        from repro.core.simulator import simulate

        ckt = Circuit("rc")
        ckt.add_vsource("V1", "a", "0", 1.0)
        ckt.add_resistor("R1", "a", "b", 1000.0)
        ckt.add_capacitor("C1", "b", "0", 1e-12)
        result = simulate(ckt, "er", t_stop=0.5e-9, h_init=1e-11)
        sig = Signal.from_result(result, "b")
        assert len(sig) == len(result.times)
        assert "ER:b" in sig.name


class TestCompareWaveforms:
    def test_identical_signals_have_zero_error(self):
        t = np.linspace(0, 1e-9, 50)
        v = np.sin(2 * np.pi * 1e9 * t)
        cmp = compare_waveforms(Signal(t, v, "a"), Signal(t, v, "ref"))
        assert cmp.max_abs_error == 0.0
        assert cmp.rms_error == 0.0

    def test_constant_offset_detected(self):
        t = np.linspace(0, 1.0, 20)
        cmp = compare_waveforms(Signal(t, np.ones(20)), Signal(t, np.zeros(20)))
        assert cmp.max_abs_error == pytest.approx(1.0)
        assert cmp.mean_abs_error == pytest.approx(1.0)

    def test_different_grids_resampled(self):
        ref = Signal(np.linspace(0, 1, 100), np.linspace(0, 1, 100))
        sig = Signal(np.linspace(0, 1, 37), np.linspace(0, 1, 37))
        cmp = compare_waveforms(sig, ref)
        assert cmp.max_abs_error < 1e-12

    def test_non_overlapping_signals_rejected(self):
        with pytest.raises(ValueError):
            compare_waveforms(Signal([0.0, 1.0], [0, 0]), Signal([2.0, 3.0], [0, 0]))

    def test_relative_error_scaling(self):
        t = np.linspace(0, 1, 10)
        cmp = compare_waveforms(Signal(t, 2.2 * np.ones(10)), Signal(t, 2.0 * np.ones(10)))
        assert cmp.max_relative_error == pytest.approx(0.1)

    @given(st.floats(min_value=1e-6, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_error_scales_linearly_with_perturbation(self, scale):
        t = np.linspace(0, 1, 64)
        base = np.sin(2 * np.pi * t)
        ref = Signal(t, base)
        perturbed = Signal(t, base + scale * 0.01)
        cmp = compare_waveforms(perturbed, ref)
        assert cmp.max_abs_error == pytest.approx(0.01 * scale, rel=1e-9)


def _fake_result(mna, method, runtime, completed=True, steps=100):
    result = SimulationResult(mna, method)
    result.stats.method = method
    result.stats.runtime_seconds = runtime
    result.stats.completed = completed
    result.stats.num_steps = steps
    if not completed:
        result.stats.failure_reason = "FactorizationBudgetExceeded: emulated OoM"
    return result


@pytest.fixture
def tiny_mna():
    from repro.circuit.netlist import Circuit

    ckt = Circuit("tiny")
    ckt.add_resistor("R1", "a", "0", 1.0)
    ckt.add_capacitor("C1", "a", "0", 1e-12)
    return ckt.build()


class TestCompareRuns:
    def test_speedups_relative_to_benr(self, tiny_mna):
        runs = [
            _fake_result(tiny_mna, "BENR", 10.0),
            _fake_result(tiny_mna, "ER", 2.0),
            _fake_result(tiny_mna, "ER-C", 4.0),
        ]
        comparison = compare_runs("ckt1", runs, structure={"#N": 3})
        assert comparison.row_for("BENR")["SP"] == 1.0
        assert comparison.row_for("ER")["SP"] == pytest.approx(5.0)
        assert comparison.row_for("ER-C")["SP"] == pytest.approx(2.5)

    def test_failed_baseline_gives_na_speedups(self, tiny_mna):
        runs = [
            _fake_result(tiny_mna, "BENR", 10.0, completed=False),
            _fake_result(tiny_mna, "ER", 2.0),
        ]
        comparison = compare_runs("ckt6", runs)
        assert comparison.row_for("BENR")["SP"] is None
        assert comparison.row_for("ER")["SP"] is None  # NA, like the paper
        assert comparison.row_for("ER")["completed"] is True

    def test_missing_method_raises_keyerror(self, tiny_mna):
        comparison = compare_runs("ckt1", [_fake_result(tiny_mna, "ER", 1.0)])
        with pytest.raises(KeyError):
            comparison.row_for("BENR")

    def test_as_dicts_merges_structure(self, tiny_mna):
        comparison = compare_runs(
            "ckt2", [_fake_result(tiny_mna, "ER", 1.0)], structure={"#N": 42, "nnzC": 7}
        )
        rows = comparison.as_dicts()
        assert rows[0]["circuit"] == "ckt2"
        assert rows[0]["#N"] == 42
        assert rows[0]["method"] == "ER"
