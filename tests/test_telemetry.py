"""The metrics core: registry semantics, thread safety, exposition format.

The telemetry package is dependency-free and sits on hot paths, so its
contract is narrow and tested hard: registration is idempotent with
loud mismatches, concurrent increments never lose counts, and the
Prometheus renderer round-trips through its own parser (which is what
the watch client consumes).
"""

import math
import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.prometheus import (
    labeled,
    make_family,
    merge,
    parse_text,
    render_text,
)


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        family = registry.counter("jobs_total", "Jobs.")
        family.inc()
        family.inc(2.5)
        snap = registry.snapshot()
        assert snap["jobs_total"]["samples"][0]["value"] == 3.5
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 8

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "Latency.",
                                  buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        sample = registry.snapshot()["latency_seconds"]["samples"][0]
        assert sample["count"] == 3
        assert sample["sum"] == pytest.approx(5.55)
        buckets = dict((bound, n) for bound, n in sample["buckets"])
        assert buckets[0.1] == 1
        assert buckets[1.0] == 2
        assert buckets[math.inf] == 3

    def test_labels_create_distinct_children(self):
        registry = MetricsRegistry()
        family = registry.counter("acks_total", "Acks.", ("accepted",))
        family.labels("yes").inc(3)
        family.labels(accepted="no").inc()
        samples = {tuple(s["labels"].items()): s["value"]
                   for s in registry.snapshot()["acks_total"]["samples"]}
        assert samples[(("accepted", "yes"),)] == 3
        assert samples[(("accepted", "no"),)] == 1

    def test_unlabeled_convenience_raises_on_labeled_family(self):
        registry = MetricsRegistry()
        family = registry.counter("acks_total", "Acks.", ("accepted",))
        with pytest.raises(ValueError):
            family.inc()

    def test_reregistration_is_idempotent_but_mismatch_raises(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs_total", "Jobs.", ("kind",))
        again = registry.counter("jobs_total", "Jobs.", ("kind",))
        assert again is first
        with pytest.raises(ValueError):
            registry.gauge("jobs_total", "Jobs.")
        with pytest.raises(ValueError):
            registry.counter("jobs_total", "Jobs.", ("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("1bad", "Bad.")
        with pytest.raises(ValueError):
            registry.counter("has-dash", "Bad.")

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        family = registry.counter("hammer_total", "Hammered.", ("thread",))
        hist = registry.histogram("hammer_seconds", "Hammered.",
                                  buckets=DEFAULT_BUCKETS)
        per_thread, threads = 10_000, 8

        def worker(tid):
            child = family.labels(str(tid))
            for i in range(per_thread):
                child.inc()
                hist.observe(0.001 * (i % 7))

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = registry.snapshot()
        total = sum(s["value"] for s in snap["hammer_total"]["samples"])
        assert total == per_thread * threads
        assert snap["hammer_seconds"]["samples"][0]["count"] == \
            per_thread * threads


class TestPrometheusText:
    def registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_jobs_total", "Jobs by outcome.",
                                   ("outcome",))
        counter.labels("ok").inc(5)
        counter.labels("failed").inc(1)
        registry.gauge("repro_depth", "Queue depth.").set(3)
        hist = registry.histogram("repro_run_seconds", "Runtime.",
                                  buckets=(0.5, 2.0))
        hist.observe(0.1)
        hist.observe(1.0)
        return registry

    def test_render_parse_round_trip(self):
        text = render_text(self.registry().snapshot())
        parsed = parse_text(text)
        assert parsed.types["repro_jobs_total"] == "counter"
        assert parsed.value("repro_jobs_total", outcome="ok") == 5
        assert parsed.total("repro_jobs_total") == 6
        assert parsed.value("repro_depth") == 3
        assert parsed.value("repro_run_seconds_count") == 2
        assert parsed.value("repro_run_seconds_sum") == pytest.approx(1.1)
        assert parsed.value("repro_run_seconds_bucket", le="0.5") == 1
        assert parsed.value("repro_run_seconds_bucket", le="+Inf") == 2

    def test_exposition_format_shape(self):
        text = render_text(self.registry().snapshot())
        lines = text.splitlines()
        assert "# HELP repro_jobs_total Jobs by outcome." in lines
        assert "# TYPE repro_jobs_total counter" in lines
        assert 'repro_jobs_total{outcome="ok"} 5' in lines
        assert text.endswith("\n")
        # every non-comment line is `name{labels} value` or `name value`
        for line in lines:
            if line and not line.startswith("#"):
                assert " " in line

    def test_label_escaping_round_trips(self):
        family = make_family("weird_total", "counter", 'Help with \\ and "q".',
                             [({"path": 'a\\b"c\nd'}, 1.0)])
        parsed = parse_text(render_text(family))
        assert parsed.value("weird_total", path='a\\b"c\nd') == 1.0

    def test_labeled_and_merge(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.").inc(2)
        relabeled = labeled(registry.snapshot(), worker="w1")
        extra = make_family("x_total", "counter", "X.", [({"worker": "w2"}, 7.0)])
        parsed = parse_text(render_text(merge(relabeled, extra)))
        assert parsed.value("x_total", worker="w1") == 2
        assert parsed.value("x_total", worker="w2") == 7
        assert parsed.total("x_total") == 9


class TestBackendDispatchCounter:
    def test_serial_backend_counts_dispatches(self, monkeypatch):
        from repro.campaign.backends import local as local_backends

        monkeypatch.setattr(
            local_backends, "execute_scenario",
            lambda payload, *args: {"status": "ok", "scenario": payload})
        family = local_backends._TM_DISPATCHES
        snap_before = family.snapshot()
        before = sum(s["value"] for s in snap_before["samples"]
                     if s["labels"].get("backend") == "serial")

        backend = local_backends.SerialBackend()
        delivered = {}
        from repro.campaign.backends.base import ExecutionContext
        context = ExecutionContext(base_options=None, sample_points=11)
        backend.execute([(0, {"name": "a"}), (1, {"name": "b"})], context,
                        lambda index, data: delivered.__setitem__(index, data))
        assert set(delivered) == {0, 1}
        snap_after = family.snapshot()
        after = sum(s["value"] for s in snap_after["samples"]
                    if s["labels"].get("backend") == "serial")
        assert after - before == 2
