"""Strongly coupled post-layout interconnect generators.

The paper's hardest cases (ckt5-ckt8) are circuits whose capacitance
matrix carries many inter-net coupling entries from post-layout parasitic
extraction, while the conductance matrix stays comparatively sparse and
banded.  These generators reproduce that structural contrast:

* :func:`coupled_lines` -- a bus of parallel RC lines with dense
  line-to-line coupling capacitors (the classic crosstalk structure);
* :func:`driven_coupled_bus` -- the same bus driven by CMOS inverters, so
  the circuit is nonlinear and stiff like the paper's mixed test cases.
"""

from __future__ import annotations

from typing import Optional

from repro.benchcircuits.inverter_chain import default_nmos, default_pmos
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PULSE, Waveform
from repro.core.rng import SeedLike, as_generator

__all__ = ["coupled_lines", "driven_coupled_bus"]


def coupled_lines(
    num_lines: int,
    segments_per_line: int,
    r_segment: float = 20.0,
    c_ground: float = 2e-15,
    c_coupling: float = 4e-15,
    coupling_span: int = 1,
    long_range_fraction: float = 0.0,
    drive: Optional[Waveform] = None,
    seed: SeedLike = 0,
    name: str = "coupled_lines",
) -> Circuit:
    """Parallel RC lines with neighbour (and optional long-range) coupling.

    Parameters
    ----------
    coupling_span:
        Couple segment ``j`` of line ``i`` to segment ``j`` of lines
        ``i+1 .. i+coupling_span`` -- larger spans densify ``C``.
    long_range_fraction:
        Additionally add this fraction (relative to the node count) of
        random long-range coupling capacitors anywhere in the bus,
        emulating the widely scattered entries of an extracted SPEF.
    """
    if num_lines < 2 or segments_per_line < 1:
        raise ValueError("coupled_lines needs >= 2 lines and >= 1 segment")
    ckt = Circuit(name)
    if drive is None:
        drive = PULSE(0.0, 1.0, 0.0, 20e-12, 20e-12, 0.4e-9, 1e-9)

    def node(line: int, seg: int) -> str:
        return f"l{line}_s{seg}"

    # Only line 0 is driven directly; the others are victims observing
    # crosstalk, which is what makes the coupling term matter.
    ckt.add_vsource("Vdrv", "drv", "0", drive)
    for line in range(num_lines):
        start = "drv" if line == 0 else f"quiet{line}"
        if line != 0:
            ckt.add_vsource(f"Vq{line}", start, "0", 0.0)
        previous = start
        for seg in range(segments_per_line):
            current = node(line, seg)
            ckt.add_resistor(f"R{line}_{seg}", previous, current, r_segment)
            ckt.add_capacitor(f"Cg{line}_{seg}", current, "0", c_ground)
            previous = current

    for line in range(num_lines):
        for other in range(line + 1, min(line + coupling_span + 1, num_lines)):
            for seg in range(segments_per_line):
                ckt.add_coupling_capacitor(
                    f"Cc{line}_{other}_{seg}", node(line, seg), node(other, seg), c_coupling
                )

    total_nodes = num_lines * segments_per_line
    extra = int(round(long_range_fraction * total_nodes))
    if extra > 0:
        rng = as_generator(seed)
        added = 0
        attempts = 0
        while added < extra and attempts < 50 * extra:
            attempts += 1
            l1, s1 = int(rng.integers(num_lines)), int(rng.integers(segments_per_line))
            l2, s2 = int(rng.integers(num_lines)), int(rng.integers(segments_per_line))
            if (l1, s1) == (l2, s2):
                continue
            ckt.add_coupling_capacitor(
                f"Cx{added}", node(l1, s1), node(l2, s2), 0.5 * c_coupling
            )
            added += 1
    return ckt


def driven_coupled_bus(
    num_lines: int,
    segments_per_line: int,
    vdd: float = 1.0,
    r_segment: float = 20.0,
    c_ground: float = 2e-15,
    c_coupling: float = 4e-15,
    coupling_span: int = 2,
    long_range_fraction: float = 0.2,
    model_level: int = 2,
    seed: SeedLike = 0,
    name: str = "driven_coupled_bus",
) -> Circuit:
    """A coupled bus where every line is driven by a CMOS inverter.

    Odd lines receive a delayed input so neighbouring drivers switch in
    opposite directions, maximizing the coupling currents.  This is the
    nonlinear + strongly-coupled regime of the paper's ckt5/ckt6 cases.
    """
    ckt = Circuit(name)
    nmos = default_nmos(model_level)
    pmos = default_pmos(model_level)
    ckt.add_model(nmos)
    ckt.add_model(pmos)
    ckt.add_vsource("Vdd", "vdd", "0", vdd)

    def node(line: int, seg: int) -> str:
        return f"l{line}_s{seg}"

    rng = as_generator(seed)
    for line in range(num_lines):
        delay = 50e-12 if line % 2 == 0 else 150e-12
        ckt.add_vsource(
            f"Vin{line}", f"in{line}", "0",
            PULSE(0.0, vdd, delay, 20e-12, 20e-12, 0.4e-9, 1.0e-9),
        )
        out = f"drv{line}"
        ckt.add_mosfet(f"MP{line}", out, f"in{line}", "vdd", "vdd", model=pmos,
                       w=1.0e-6, l=0.1e-6)
        ckt.add_mosfet(f"MN{line}", out, f"in{line}", "0", "0", model=nmos,
                       w=0.5e-6, l=0.1e-6)
        previous = out
        for seg in range(segments_per_line):
            current = node(line, seg)
            ckt.add_resistor(f"R{line}_{seg}", previous, current, r_segment)
            ckt.add_capacitor(f"Cg{line}_{seg}", current, "0", c_ground)
            previous = current

    for line in range(num_lines):
        for other in range(line + 1, min(line + coupling_span + 1, num_lines)):
            for seg in range(segments_per_line):
                ckt.add_coupling_capacitor(
                    f"Cc{line}_{other}_{seg}", node(line, seg), node(other, seg), c_coupling
                )

    total_nodes = num_lines * segments_per_line
    extra = int(round(long_range_fraction * total_nodes))
    added = 0
    attempts = 0
    while added < extra and attempts < 50 * max(extra, 1):
        attempts += 1
        l1, s1 = int(rng.integers(num_lines)), int(rng.integers(segments_per_line))
        l2, s2 = int(rng.integers(num_lines)), int(rng.integers(segments_per_line))
        if (l1, s1) == (l2, s2):
            continue
        ckt.add_coupling_capacitor(
            f"Cx{added}", node(l1, s1), node(l2, s2), 0.5 * c_coupling
        )
        added += 1
    return ckt
