"""Scenario-level result cache.

A re-planned campaign usually changes only a slice of its scenarios --
one more method, a tweaked parameter axis -- yet the naive flow
re-simulates everything.  The cache keys finished outcomes by the
scenario's content hash (:func:`repro.campaign.scenario.scenario_hash`),
so :func:`~repro.campaign.runner.run_campaign` can adopt the unchanged
scenarios' outcomes from disk and only execute the ones whose canonical
spec actually changed.  With a fully unchanged plan, a cached re-run
simulates zero scenarios.

Two rules keep the cache honest:

* the scenario hash deliberately excludes ``name`` and ``tags``
  (presentation metadata), but it also excludes the campaign-wide
  *context* -- base options and the sample grid -- which **does**
  change results.  Cache entries are therefore keyed by
  ``scenario_hash + context hash``; rerunning under different base
  options is a miss, renaming a sweep is a hit.  The per-scenario
  timeout is deliberately *not* part of the context: it is execution
  policy, and a stored ``ok`` outcome's content does not depend on the
  budget it ran under.
* only ``status == "ok"`` outcomes are stored.  Failures and timeouts
  are re-executed on the next run -- a cache must never make a transient
  infrastructure failure permanent.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Dict, Optional, Union

from repro.campaign.scenario import Scenario, scenario_hash

__all__ = ["ResultCache", "context_hash"]

#: bumped when the on-disk cache entry layout changes
CACHE_FORMAT_VERSION = 1


def context_hash(base_options: Optional[Dict[str, object]],
                 sample_points: int) -> str:
    """Hash of everything outcome-relevant that is *not* in the scenario."""
    payload = json.dumps(
        {"base_options": base_options, "sample_points": int(sample_points)},
        sort_keys=True, default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ResultCache:
    """Filesystem-backed map ``(scenario content, context) -> outcome``."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def key(self, scenario: Scenario, context: str) -> str:
        return f"{scenario_hash(scenario)}-{context}"

    def path(self, scenario: Scenario, context: str) -> Path:
        return self.root / f"{self.key(scenario, context)}.json"

    def has(self, scenario: Scenario, context: str) -> bool:
        return self.path(scenario, context).exists()

    def get(self, scenario: Scenario,
            context: str) -> Optional[Dict[str, object]]:
        """Return the cached outcome dict, rewritten to ``scenario``.

        The stored scenario and the requesting one can differ in name and
        tags (the hash ignores both), so the outcome is re-labelled with
        the *current* scenario before it is returned -- aggregate tables
        must show this campaign's names, not last week's.
        """
        outcome = self.get_by_key(self.key(scenario, context))
        if outcome is None:
            return None
        outcome["scenario"] = scenario.to_dict()
        return outcome

    def get_by_key(self, key: str) -> Optional[Dict[str, object]]:
        """Cached outcome by raw entry key, *without* relabelling.

        The service layer addresses the cache this way: a job id **is**
        a cache key (scenario hash + context hash), and the stored
        scenario labels are as good as any for an HTTP client that never
        supplied its own.
        """
        path = self.root / f"{key}.json"
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            # missing, or a reader raced a (non-atomic, pre-PR-5) writer
            return None
        if not isinstance(entry, dict) or \
                entry.get("format_version") != CACHE_FORMAT_VERSION:
            return None
        outcome = dict(entry["outcome"])
        outcome["reused_from"] = "cache"
        return outcome

    def put(self, scenario: Scenario, context: str,
            outcome: Dict[str, object]) -> Optional[Path]:
        """Store an outcome; silently refuses non-ok outcomes.

        The write is **atomic**: the entry lands in a same-directory
        temp file first and is ``os.replace``-d into place, so any
        number of service workers can share one cache directory --
        concurrent readers see either the old entry or the new one,
        never a torn write, and the last writer wins bytes-for-bytes.
        """
        if outcome.get("status") != "ok":
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(scenario, context)
        stored = dict(outcome)
        stored.pop("reused_from", None)
        entry = {
            "format_version": CACHE_FORMAT_VERSION,
            "key": self.key(scenario, context),
            "scenario_hash": scenario_hash(scenario),
            "context": context,
            "outcome": stored,
        }
        # ".tmp" suffix keeps half-written entries invisible to the
        # "*.json" globs of __len__ and the key lookups of get()
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(entry, default=repr) + "\n")
        try:
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
