"""The watch dashboard: client digestion, plain rendering, CLI snapshot.

Two rigs: a **fake** front end serving canned ``/stats`` + ``/metrics``
documents (deterministic, golden-ish render assertions, rate math under
our control) and a **real** ``ServiceServer`` scraped by the actual
``python -m repro.watch --once --json`` subprocess -- proving the
dashboard needs no TTY and no third-party packages.
"""

import json
import os
import subprocess
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.server import ServiceServer
from repro.telemetry import prometheus
from repro.telemetry.metrics import MetricsRegistry
from repro.watch.client import WatchClient
from repro.watch.render import render_snapshot, sparkline

CANNED_STATS = {
    "uptime_seconds": 125.0,
    "broker": {"path": "/tmp/b",
               "jobs": {"queued": 3, "leased": 1, "done": 40, "failed": 2}},
    "counters": {"admitted": 30, "coalesced": 10, "cache_answers": 10,
                 "simulations": 28, "worker_cache_hits": 12},
    "cache": {"root": "/tmp/c", "entries": 17},
    "runtime_model": {"records": 30, "pairs": 6},
    "campaigns": 1,
    "backpressure": {"max_queue_depth": 100, "rejections": 4},
    "workers": {
        "host:1": {"busy": True, "current_job": "a" * 40, "pid": 1,
                   "num_executed": 20, "num_cache_hits": 8,
                   "steps_total": 5000, "heartbeat_age_seconds": 2.0},
        "host:2": {"busy": False, "current_job": None, "pid": 2,
                   "num_executed": 8, "num_cache_hits": 4,
                   "steps_total": 2100, "heartbeat_age_seconds": 31.0},
    },
}

CANNED_CAMPAIGNS = {"campaigns": [
    {"campaign_id": "abc123", "total": 10, "done": 5, "failed": 1,
     "finished": False, "created_at": 1000.0,
     "status_url": "/campaigns/abc123"},
]}


class _FakeFrontEnd:
    """Minimal canned HTTP server; per-path hit counts for assertions."""

    def __init__(self, steps_total=7100.0):
        self.steps_total = steps_total
        registry = MetricsRegistry()
        registry.counter("repro_integrator_steps_total", "Steps.").inc(
            steps_total)
        self.registry = registry
        fake = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def do_GET(self):
                if self.path == "/stats":
                    body = json.dumps(CANNED_STATS).encode()
                    ctype = "application/json"
                elif self.path == "/campaigns":
                    body = json.dumps(CANNED_CAMPAIGNS).encode()
                    ctype = "application/json"
                elif self.path == "/healthz":
                    body = json.dumps({"status": "ok"}).encode()
                    ctype = "application/json"
                elif self.path == "/metrics":
                    body = prometheus.render_text(
                        fake.registry.snapshot()).encode()
                    ctype = prometheus.CONTENT_TYPE
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self.httpd.server_address[1]}"
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()

    def advance_steps(self, amount):
        self.registry.get("repro_integrator_steps_total").inc(amount)

    def reset_steps(self, new_total):
        """Simulate a restarted fleet member republishing from zero."""
        registry = MetricsRegistry()
        registry.counter("repro_integrator_steps_total", "Steps.").inc(
            new_total)
        self.registry = registry

    def shutdown(self):
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture
def fake():
    frontend = _FakeFrontEnd()
    yield frontend
    frontend.shutdown()


class TestSparkline:
    def test_empty_and_flat_and_scaled(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0, 0]) == "▁▁▁"
        line = sparkline([0.0, 4.0, 8.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(range(100), width=32)) == 32


class TestAgainstFakeFrontEnd:
    def test_snapshot_digests_canned_documents(self, fake):
        client = WatchClient(fake.url)
        snap = client.poll()
        assert snap.healthy
        assert snap.queue == {"queued": 3, "leased": 1, "done": 40,
                              "failed": 2}
        fractions = snap.fractions()
        assert fractions["coalesced_or_cached"] == pytest.approx(0.4)
        assert fractions["worker_cache_hit"] == pytest.approx(0.3)
        assert set(snap.workers) == {"host:1", "host:2"}
        assert snap.campaigns[0]["campaign_id"] == "abc123"

    def test_rates_derive_from_successive_polls(self, fake):
        client = WatchClient(fake.url)
        first = client.poll()
        assert first.rates == {}
        fake.advance_steps(500)
        second = client.poll()
        dt = second.ts - first.ts
        assert second.rates["steps_per_sec"] == pytest.approx(500 / dt)
        assert second.history["steps_per_sec"] == \
            [second.rates["steps_per_sec"]]

    def test_counter_reset_reports_new_level_not_zero(self, fake):
        """A restarted fleet member must not flatline the rate.

        When a counter goes backwards (process restart republishing from
        zero), everything the new process counted happened since the last
        poll, so the new absolute level is the increase -- the Prometheus
        counter-reset rule.  A regression here clamps the rate to 0.0 and
        hides exactly the restarts the dashboard exists to surface.
        """
        client = WatchClient(fake.url)
        first = client.poll()
        fake.reset_steps(250)
        second = client.poll()
        dt = second.ts - first.ts
        assert second.rates["steps_per_sec"] == pytest.approx(250 / dt)
        assert second.rates["steps_per_sec"] > 0.0

    def test_plain_render_contains_every_section(self, fake):
        client = WatchClient(fake.url)
        text = render_snapshot(client.poll())
        assert "[healthy]" in text and "up 2m" in text
        assert "queue   3 queued / 1 leased / 40 done / 2 failed" in text
        assert "saved 40%" in text and "hit rate 30%" in text
        assert "backpressure limit 100, 4 rejected (429)" in text
        assert "workers (2)" in text
        assert "host:1" in text and "busy" in text
        assert "host:2" in text and "idle" in text
        assert "5000" in text and "2100" in text
        assert "campaigns (1)" in text and "abc123" in text
        assert "5/10" in text and "##########.........." in text
        assert "17 entries" in text

    def test_unreachable_front_end_degrades(self):
        client = WatchClient("http://127.0.0.1:9", timeout=0.5)
        snap = client.poll()
        assert not snap.healthy and snap.error
        text = render_snapshot(snap)
        assert "UNREACHABLE" in text

    def test_to_dict_is_json_ready(self, fake):
        client = WatchClient(fake.url)
        document = json.loads(json.dumps(client.poll().to_dict()))
        assert document["healthy"] is True
        assert document["queue"]["done"] == 40


class TestAlerts:
    def test_thresholds_hold_on_a_quiet_fleet(self, fake):
        snap = WatchClient(fake.url).poll()
        assert snap.alerts(max_queue_depth=3, max_heartbeat_age=60.0) == []

    def test_queue_depth_violation_names_the_numbers(self, fake):
        snap = WatchClient(fake.url).poll()
        alerts = snap.alerts(max_queue_depth=2)
        assert len(alerts) == 1
        assert "queue depth 3" in alerts[0]

    def test_stale_heartbeat_names_the_worker(self, fake):
        snap = WatchClient(fake.url).poll()
        alerts = snap.alerts(max_heartbeat_age=30.0)
        assert len(alerts) == 1
        assert "host:2" in alerts[0]

    def test_unreachable_service_is_not_an_alert(self):
        snap = WatchClient("http://127.0.0.1:9", timeout=0.5).poll()
        assert snap.alerts(max_queue_depth=0, max_heartbeat_age=0.0) == []


class TestFleetSection:
    def test_no_supervisor_no_fleet_line(self, fake):
        snap = WatchClient(fake.url).poll()
        assert snap.fleet is None
        assert "\nfleet " not in render_snapshot(snap)

    def test_supervisor_state_renders_one_line(self, fake):
        snap = WatchClient(fake.url).poll()
        snap.stats = dict(snap.stats)
        snap.stats["fleet"] = {
            "supervisor_id": "host:99", "live_workers": 2,
            "worker_floor": 0, "worker_ceiling": 4,
            "spawns": 5, "retires": 3, "crashes": 1, "zombies_reaped": 0,
            "breaker_open": False, "last_action": "hold",
            "last_reason": "2 worker(s) cover queue depth 3",
        }
        text = render_snapshot(snap)
        assert "fleet   supervisor host:99: 2 live" in text
        assert "5 spawned, 3 retired, 1 crashed" in text
        assert "breaker closed" in text
        assert "last: hold" in text

    def test_open_breaker_is_shouted(self, fake):
        snap = WatchClient(fake.url).poll()
        snap.stats = dict(snap.stats)
        snap.stats["fleet"] = {"supervisor_id": "h:1", "breaker_open": True}
        assert "breaker OPEN" in render_snapshot(snap)


class TestCliAgainstRealServer:
    def run_watch(self, *argv):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.watch", *argv],
            capture_output=True, text=True, timeout=120, env=env)

    def test_once_json_snapshot_is_complete(self, tmp_path):
        server = ServiceServer(data_dir=tmp_path / "svc", poll_interval=0.05)
        server.start()
        try:
            proc = self.run_watch("--once", "--json", "--url", server.url)
            assert proc.returncode == 0, proc.stderr
            document = json.loads(proc.stdout)
            assert document["healthy"] is True
            for key in ("queue", "counters", "fractions", "rates",
                        "workers", "campaigns", "stats"):
                assert key in document
            assert document["queue"] == {"queued": 0, "leased": 0,
                                         "done": 0, "failed": 0}
        finally:
            server.shutdown()

    def test_once_plain_renders_and_exits_nonzero_when_down(self):
        proc = self.run_watch("--once", "--url", "http://127.0.0.1:9",
                              "--timeout", "0.5")
        assert proc.returncode == 1
        assert "UNREACHABLE" in proc.stdout

    def test_json_without_once_is_an_error(self):
        proc = self.run_watch("--json")
        assert proc.returncode == 2
        assert "--json requires --once" in proc.stderr

    def test_alert_flags_require_once(self):
        proc = self.run_watch("--alert-queue-depth", "5")
        assert proc.returncode == 2
        assert "--alert-* thresholds require --once" in proc.stderr

    def test_alert_violation_exits_2_with_reason(self, fake):
        proc = self.run_watch("--once", "--url", fake.url,
                              "--alert-queue-depth", "2")
        assert proc.returncode == 2, proc.stderr
        assert "ALERT: queue depth 3" in proc.stderr

    def test_alert_thresholds_holding_exit_0(self, fake):
        proc = self.run_watch("--once", "--url", fake.url,
                              "--alert-queue-depth", "3",
                              "--alert-heartbeat-age", "60")
        assert proc.returncode == 0, proc.stderr
        assert "ALERT" not in proc.stderr

    def test_token_is_sent_as_bearer_auth(self, tmp_path):
        server = ServiceServer(data_dir=tmp_path / "svc",
                               poll_interval=0.05, auth_token="hunter2")
        server.start()
        try:
            denied = self.run_watch("--once", "--url", server.url)
            # /metrics stays open but /stats bounces: the poll degrades
            assert denied.returncode == 1
            allowed = self.run_watch("--once", "--json", "--url", server.url,
                                     "--token", "hunter2")
            assert allowed.returncode == 0, allowed.stderr
            assert json.loads(allowed.stdout)["healthy"] is True
        finally:
            server.shutdown()
