"""Nonlinear device models (diode, MOSFET).

These devices are evaluated once per Newton iteration (BENR) or once per
time step (exponential Rosenbrock-Euler), producing their contribution to
the static current vector ``f(x)``, charge vector ``q(x)`` and the
linearized matrices ``G(x) = df/dx`` and ``C(x) = dq/dx``.
"""

from repro.circuit.devices.base import NonlinearDevice, NonlinearStamper
from repro.circuit.devices.diode import Diode, DiodeModel
from repro.circuit.devices.mosfet import MOSFET, MOSFETModel

__all__ = [
    "NonlinearDevice",
    "NonlinearStamper",
    "Diode",
    "DiodeModel",
    "MOSFET",
    "MOSFETModel",
]
