"""Report generation for the paper's tables and figures."""

from repro.reporting.tables import format_table, table1_rows, render_table1
from repro.reporting.campaign_tables import (
    DETERMINISTIC_COLUMNS,
    campaign_rows,
    render_campaign_table,
    render_method_matrix,
)
from repro.reporting.figures import (
    Figure1Report,
    figure1_nnz_report,
    Figure2Report,
    figure2_accuracy_report,
)
from repro.reporting.service_tables import (
    render_service_stats,
    service_stats_rows,
)
from repro.reporting.verify_tables import (
    render_verify_report,
    render_verify_summary,
    verify_rows,
)

__all__ = [
    "format_table",
    "table1_rows",
    "render_table1",
    "campaign_rows",
    "render_campaign_table",
    "render_method_matrix",
    "DETERMINISTIC_COLUMNS",
    "Figure1Report",
    "figure1_nnz_report",
    "Figure2Report",
    "figure2_accuracy_report",
    "verify_rows",
    "render_verify_report",
    "render_verify_summary",
    "service_stats_rows",
    "render_service_stats",
]
