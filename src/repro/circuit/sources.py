"""Time-domain excitation waveforms for independent sources.

The exponential Rosenbrock-Euler formulation of the paper (Sec. III)
assumes the external excitation ``u(t)`` is piecewise linear inside each
time step so that its contribution is captured exactly by the
``h^2 phi_2(h J_k) b_k`` term with ``b_k = C_k^{-1} B (u(t_{k+1}) -
u(t_k)) / h_k`` (Eq. 13).  Every waveform therefore exposes, besides its
value, the list of *breakpoints* at which its slope changes; the adaptive
step controller never steps across a breakpoint so the piecewise-linear
assumption holds for PWL and PULSE inputs and is an accurate local
approximation for smooth inputs (SIN, EXP).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

__all__ = ["Waveform", "DC", "PWL", "PULSE", "SIN", "EXP"]


class Waveform(ABC):
    """Abstract time-domain waveform ``u(t)``."""

    @abstractmethod
    def value(self, t: float) -> float:
        """Return the waveform value at time ``t`` (seconds)."""

    def slope(self, t: float) -> float:
        """Return ``du/dt`` at time ``t`` (finite difference by default)."""
        eps = 1e-15 + 1e-9 * abs(t)
        return (self.value(t + eps) - self.value(t - eps)) / (2.0 * eps)

    @property
    def is_piecewise_linear(self) -> bool:
        """Whether the waveform is exactly linear between its breakpoints.

        When True, :meth:`slope` returns the exact segment slope -- a
        constant (bit-identical) value for every ``t`` inside one segment
        -- and the exponential integrators use it directly for the Eq. 13
        excitation term instead of the rounding-sensitive finite
        difference ``(u(t+h) - u(t)) / h``.
        """
        return False

    def breakpoints(self, t_end: float) -> List[float]:
        """Return times in ``[0, t_end]`` where the slope is discontinuous.

        The transient drivers clip their step size so that no step
        straddles a breakpoint; this keeps the piecewise-linear input
        assumption of Eq. (13) exact for PWL/PULSE sources.
        """
        return []

    def __call__(self, t: float) -> float:
        return self.value(t)


class DC(Waveform):
    """Constant waveform."""

    def __init__(self, value: float):
        self._value = float(value)

    def value(self, t: float) -> float:  # noqa: ARG002 - t unused by design
        return self._value

    def slope(self, t: float) -> float:  # noqa: ARG002
        return 0.0

    @property
    def is_piecewise_linear(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"DC({self._value:g})"


class PWL(Waveform):
    """Piecewise-linear waveform defined by ``(time, value)`` points.

    Before the first point the waveform holds the first value; after the
    last point it holds the last value.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 1:
            raise ValueError("PWL waveform needs at least one (time, value) point")
        times = [float(t) for t, _ in points]
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("PWL time points must be strictly increasing")
        self._times = times
        self._values = [float(v) for _, v in points]

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        # Linear search is fine: waveforms have a handful of points.
        for i in range(len(times) - 1):
            if times[i] <= t <= times[i + 1]:
                frac = (t - times[i]) / (times[i + 1] - times[i])
                return values[i] + frac * (values[i + 1] - values[i])
        return values[-1]

    def slope(self, t: float) -> float:
        times, values = self._times, self._values
        if t < times[0] or t >= times[-1]:
            return 0.0
        for i in range(len(times) - 1):
            if times[i] <= t < times[i + 1]:
                return (values[i + 1] - values[i]) / (times[i + 1] - times[i])
        return 0.0

    def breakpoints(self, t_end: float) -> List[float]:
        return [t for t in self._times if 0.0 < t < t_end]

    @property
    def is_piecewise_linear(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"PWL({self.points})"


class PULSE(Waveform):
    """SPICE PULSE waveform.

    Parameters follow the SPICE card
    ``PULSE(v1 v2 delay rise fall width period)``: the output starts at
    ``v1``, after ``delay`` it ramps to ``v2`` over ``rise`` seconds, stays
    there for ``width`` seconds, ramps back over ``fall`` seconds, and the
    pattern repeats with the given ``period``.
    """

    def __init__(
        self,
        v1: float,
        v2: float,
        delay: float = 0.0,
        rise: float = 1e-12,
        fall: float = 1e-12,
        width: float = 1e-9,
        period: float = 2e-9,
    ):
        if rise <= 0 or fall <= 0:
            raise ValueError("PULSE rise/fall times must be positive")
        if width < 0:
            raise ValueError("PULSE width must be non-negative")
        if period <= 0:
            raise ValueError("PULSE period must be positive")
        if rise + width + fall > period:
            raise ValueError("PULSE rise + width + fall must fit inside the period")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def _phase(self, t: float) -> float:
        """Return the time within the current period (after the delay).

        Right-continuous at the delay boundary (``t == delay`` maps to
        phase 0); the value is ``v1`` either way.  Note :meth:`slope`
        does *not* use the phase: the modulo can round an exact
        breakpoint time onto the wrong side of a region boundary, so the
        slope classifies against breakpoint floats directly.
        """
        if t < self.delay:
            return -1.0
        return (t - self.delay) % self.period

    def value(self, t: float) -> float:
        ph = self._phase(t)
        if ph < 0.0:
            return self.v1
        if ph < self.rise:
            return self.v1 + (self.v2 - self.v1) * ph / self.rise
        if ph < self.rise + self.width:
            return self.v2
        if ph < self.rise + self.width + self.fall:
            frac = (ph - self.rise - self.width) / self.fall
            return self.v2 + (self.v1 - self.v2) * frac
        return self.v1

    def slope(self, t: float) -> float:
        if t < self.delay:
            return 0.0
        # Classify against boundary times constructed with exactly the
        # float expressions breakpoints() uses (base + offset in t-space).
        # The (t - delay) % period phase can land an ulp on the wrong side
        # of a region boundary for a t the time loop stepped onto, which
        # would apply the *previous* segment's slope across the entire
        # next step; comparing t directly against the breakpoint floats is
        # exact and right-continuous (a boundary belongs to the segment it
        # enters).
        rising = (self.v2 - self.v1) / self.rise
        falling = (self.v1 - self.v2) / self.fall
        # offsets summed exactly as in breakpoints() -- a different
        # association order would round some boundaries to different floats
        segment_starts = (
            (0.0, rising),
            (self.rise, 0.0),
            (self.rise + self.width, falling),
            (self.rise + self.width + self.fall, 0.0),
            (self.period, rising),
        )
        k = int((t - self.delay) // self.period)
        boundaries = []
        for kk in (k - 1, k, k + 1):
            if kk < 0:
                continue
            base = self.delay + kk * self.period
            boundaries.extend((base + offset, value)
                              for offset, value in segment_starts)
        # Coincident boundary floats happen for degenerate segments (e.g.
        # zero off-time: fall end == period end): the segment entered
        # *last* in chronological order must win, which is the later entry
        # in generation order -- so tie-break on the index, not the value.
        slope = 0.0
        for start, _, value in sorted(
                (start, index, value)
                for index, (start, value) in enumerate(boundaries)):
            if start <= t:
                slope = value
        return slope

    def breakpoints(self, t_end: float) -> List[float]:
        pts: List[float] = []
        if self.delay > 0:
            pts.append(self.delay)
        k = 0
        while True:
            base = self.delay + k * self.period
            if base >= t_end:
                break
            for offset in (
                self.rise,
                self.rise + self.width,
                self.rise + self.width + self.fall,
                self.period,
            ):
                bp = base + offset
                if 0.0 < bp < t_end:
                    pts.append(bp)
            k += 1
            if k > 1_000_000:  # pragma: no cover - defensive bound
                break
        return sorted(set(pts))

    @property
    def is_piecewise_linear(self) -> bool:
        return True

    def __repr__(self) -> str:
        return (
            f"PULSE(v1={self.v1:g}, v2={self.v2:g}, delay={self.delay:g}, "
            f"rise={self.rise:g}, fall={self.fall:g}, width={self.width:g}, "
            f"period={self.period:g})"
        )


class SIN(Waveform):
    """SPICE SIN waveform ``offset + amplitude * sin(2*pi*freq*(t-delay))``.

    An optional exponential damping factor ``theta`` is supported as in the
    SPICE card ``SIN(offset amplitude freq delay theta)``.
    """

    def __init__(
        self,
        offset: float,
        amplitude: float,
        freq: float,
        delay: float = 0.0,
        theta: float = 0.0,
    ):
        if freq <= 0:
            raise ValueError("SIN frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.delay = float(delay)
        self.theta = float(theta)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        tau = t - self.delay
        damp = math.exp(-self.theta * tau) if self.theta else 1.0
        return self.offset + self.amplitude * damp * math.sin(2.0 * math.pi * self.freq * tau)

    def slope(self, t: float) -> float:
        if t < self.delay:
            return 0.0
        tau = t - self.delay
        w = 2.0 * math.pi * self.freq
        if self.theta:
            damp = math.exp(-self.theta * tau)
            return self.amplitude * damp * (w * math.cos(w * tau) - self.theta * math.sin(w * tau))
        return self.amplitude * w * math.cos(w * tau)

    def breakpoints(self, t_end: float) -> List[float]:
        if 0.0 < self.delay < t_end:
            return [self.delay]
        return []

    def __repr__(self) -> str:
        return (
            f"SIN(offset={self.offset:g}, amplitude={self.amplitude:g}, "
            f"freq={self.freq:g}, delay={self.delay:g}, theta={self.theta:g})"
        )


class EXP(Waveform):
    """SPICE EXP waveform: two exponential ramps.

    ``EXP(v1 v2 td1 tau1 td2 tau2)``: starts at ``v1``, at ``td1`` ramps
    exponentially toward ``v2`` with time constant ``tau1``, and at ``td2``
    ramps back toward ``v1`` with time constant ``tau2``.
    """

    def __init__(
        self,
        v1: float,
        v2: float,
        td1: float = 0.0,
        tau1: float = 1e-9,
        td2: float = 1e-9,
        tau2: float = 1e-9,
    ):
        if tau1 <= 0 or tau2 <= 0:
            raise ValueError("EXP time constants must be positive")
        if td2 < td1:
            raise ValueError("EXP second delay must not precede the first")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.td1 = float(td1)
        self.tau1 = float(tau1)
        self.td2 = float(td2)
        self.tau2 = float(tau2)

    def value(self, t: float) -> float:
        if t <= self.td1:
            return self.v1
        rising = self.v1 + (self.v2 - self.v1) * (1.0 - math.exp(-(t - self.td1) / self.tau1))
        if t <= self.td2:
            return rising
        peak = self.v1 + (self.v2 - self.v1) * (1.0 - math.exp(-(self.td2 - self.td1) / self.tau1))
        return self.v1 + (peak - self.v1) * math.exp(-(t - self.td2) / self.tau2)

    def slope(self, t: float) -> float:
        if t <= self.td1:
            return 0.0
        if t <= self.td2:
            return (self.v2 - self.v1) / self.tau1 * math.exp(-(t - self.td1) / self.tau1)
        peak = self.v1 + (self.v2 - self.v1) * (1.0 - math.exp(-(self.td2 - self.td1) / self.tau1))
        return -(peak - self.v1) / self.tau2 * math.exp(-(t - self.td2) / self.tau2)

    def breakpoints(self, t_end: float) -> List[float]:
        return [t for t in (self.td1, self.td2) if 0.0 < t < t_end]

    def __repr__(self) -> str:
        return (
            f"EXP(v1={self.v1:g}, v2={self.v2:g}, td1={self.td1:g}, "
            f"tau1={self.tau1:g}, td2={self.td2:g}, tau2={self.tau2:g})"
        )
