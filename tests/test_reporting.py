"""Tests for report generation (repro.reporting)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.statistics import MethodComparison
from repro.analysis.waveform import Signal
from repro.reporting.figures import figure1_nnz_report, figure2_accuracy_report
from repro.reporting.tables import format_table, render_table1, table1_rows


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["a", "bbb"], [[1, 2.5], ["x", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bbb" in lines[0]
        assert "NA" in lines[3]

    def test_empty_rows(self):
        text = format_table(["col1", "col2"], [])
        assert "col1" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123], [12345.6], [1.5]])
        assert "0.000123" in text
        assert "1.23e+04" in text or "12345" in text  # scientific or plain
        assert "1.5" in text


def _comparison(circuit, benr_ok=True):
    comp = MethodComparison(circuit_name=circuit,
                            structure={"#N": 100, "#Dev": 10, "nnzC": 50, "nnzG": 200})
    comp.rows.append({
        "method": "BENR", "#step": 500, "#NRa": 2.8, "#ma": 0.0, "#LU": 1400,
        "RT(s)": 10.0, "peak_factor_nnz": 5000, "completed": benr_ok,
        "failure": None if benr_ok else "FactorizationBudgetExceeded: fill-in",
        "SP": 1.0 if benr_ok else None,
    })
    comp.rows.append({
        "method": "ER", "#step": 300, "#NRa": 0.0, "#ma": 28.0, "#LU": 300,
        "RT(s)": 2.0, "peak_factor_nnz": 800, "completed": True, "failure": None,
        "SP": 5.0 if benr_ok else None,
    })
    comp.rows.append({
        "method": "ER-C", "#step": 310, "#NRa": 0.0, "#ma": 30.0, "#LU": 310,
        "RT(s)": 2.5, "peak_factor_nnz": 800, "completed": True, "failure": None,
        "SP": 4.0 if benr_ok else None,
    })
    return comp


class TestTable1:
    def test_rows_one_per_circuit(self):
        rows = table1_rows([_comparison("ckt1"), _comparison("ckt2")])
        assert len(rows) == 2
        assert rows[0][0] == "ckt1"
        # columns: case + 4 structure + 3 methods x 4
        assert len(rows[0]) == 5 + 12

    def test_failed_baseline_renders_oom_and_na(self):
        text = render_table1([_comparison("ckt6", benr_ok=False)])
        assert "OoM" in text
        assert "NA" in text

    def test_full_render_contains_headers(self):
        text = render_table1([_comparison("ckt1")])
        for header in ("Case", "#N", "nnzC", "BENR #step", "ER #ma", "ER-C SP"):
            assert header in text

    def test_speedup_values_present(self):
        text = render_table1([_comparison("ckt1")])
        assert "5" in text  # the ER speedup


class TestFigure1Report:
    def test_report_on_banded_vs_coupled(self):
        n = 150
        rng = np.random.default_rng(0)
        G = sp.diags([np.full(n - 1, -1.0), np.full(n, 2.1), np.full(n - 1, -1.0)],
                     [-1, 0, 1]).tocsc()
        rows = rng.integers(0, n, size=300)
        cols = rng.integers(0, n, size=300)
        C = (sp.coo_matrix((np.full(300, 1e-15), (rows, cols)), shape=(n, n))
             + sp.identity(n) * 1e-12).tocsc()
        C = (C + C.T).tocsc()
        report = figure1_nnz_report(C, G, h=1e-12)
        assert report.n == n
        assert report.nnz_LU_ChG > report.nnz_LU_G
        assert report.bandwidth_C > report.bandwidth_G
        assert report.factor_advantage > 1.0
        d = report.as_dict()
        assert d["nnz(G)"] == G.nnz
        assert "quantity" in report.render()

    def test_singular_c_is_regularized_for_its_own_factorization(self):
        n = 20
        G = sp.identity(n, format="csc")
        C = sp.diags([1e-12] * (n // 2) + [0.0] * (n - n // 2)).tocsc()
        report = figure1_nnz_report(C, G)
        assert report.nnz_LU_C >= n  # factorization succeeded after patching


class TestFigure2Report:
    def test_error_ordering_preserved(self):
        t = np.linspace(0, 1e-9, 200)
        ref = Signal(t, np.sin(2e9 * np.pi * t), "REF")
        good = Signal(t, np.sin(2e9 * np.pi * t) + 1e-4, "ER")
        bad = Signal(t, np.sin(2e9 * np.pi * t) + 1e-2, "BENR")
        report = figure2_accuracy_report("out", ref, {"ER": good, "BENR": bad})
        errors = report.max_errors()
        assert errors["ER"] < errors["BENR"]
        assert "BENR" in report.render()
        assert set(report.rms_errors()) == {"ER", "BENR"}

    def test_incremental_add(self):
        t = np.linspace(0, 1, 50)
        ref = Signal(t, np.zeros(50), "REF")
        report = figure2_accuracy_report("node", ref)
        report.add("M1", Signal(t, np.full(50, 0.5), "M1"))
        assert report.comparisons["M1"].max_abs_error == pytest.approx(0.5)


class TestServiceStatsTable:
    def stats_document(self):
        return {
            "uptime_seconds": 12.5,
            "broker": {"path": "/tmp/b", "jobs": {"queued": 1, "leased": 2,
                                                  "done": 7, "failed": 0}},
            "counters": {"admitted": 10, "coalesced": 4, "cache_answers": 6,
                         "simulations": 10, "worker_cache_hits": 3},
            "cache": {"root": "/tmp/c", "entries": 7},
            "runtime_model": {"records": 10, "pairs": 4},
            "campaigns": 2,
        }

    def test_rows_cover_every_section(self):
        from repro.reporting import service_stats_rows

        rows = service_stats_rows(self.stats_document())
        sections = {row[0] for row in rows}
        assert sections == {"queue", "admission", "workers", "cache",
                            "cost model", "service"}
        by_metric = {(row[0], row[1]): row[2] for row in rows}
        assert by_metric[("admission", "submissions")] == 20
        assert by_metric[("admission", "saved fraction")] == pytest.approx(0.5)
        assert by_metric[("workers", "simulations")] == 10

    def test_render_is_aligned_table(self):
        from repro.reporting import render_service_stats

        table = render_service_stats(self.stats_document())
        lines = table.splitlines()
        assert lines[0].startswith("section")
        assert all("|" in line for line in lines if line and "-+-" not in line)

    def test_render_tolerates_minimal_document(self):
        from repro.reporting import render_service_stats

        table = render_service_stats({})
        assert "queued" in table and "simulations" in table
