"""Fig. 1 regeneration as a scaling sweep: LU fill-in of (C/h + G) vs G.

The paper's Fig. 1 shows spy plots of the FreeCPU post-extraction matrices
and of their LU factors; the quantitative content is the non-zero counts:
the factors of ``G`` stay close to ``nnz(G)``, while the factors of
``(C/h + G)`` -- the Jacobian BENR refactorizes on every step-size change --
fill in worse and worse as the system grows and coupling capacitances
spread ``C`` off the diagonal.

This benchmark sweeps that gap across the large-scale generators
(``large_rc_mesh``, ``pdn_multilayer``) up to >= 50k nodes, and measures
three wall-clock costs per point:

* ``t_factor_G``        -- one full factorization of ``G`` (the reusable
  factor of the exponential framework),
* ``t_factor_ChG``      -- one full factorization of ``C/h + G`` with a
  fresh COLAMD analysis (what BENR pays on a step-size change),
* ``t_refactor_ChG``    -- the same factorization reusing the symbolic
  ordering through :class:`repro.linalg.sparse_lu.SymbolicCache` (what the
  workspace now pays on same-pattern refactorizations).

Usage::

    PYTHONPATH=src python benchmarks/bench_fig1_nnz.py             # full sweep, >= 50k nodes
    PYTHONPATH=src python benchmarks/bench_fig1_nnz.py --smoke     # CI-sized
    PYTHONPATH=src python benchmarks/bench_fig1_nnz.py --check     # assert the fill-in gap
    PYTHONPATH=src python benchmarks/bench_fig1_nnz.py --history   # append fig1_history.jsonl

Outputs: ``benchmarks/output/BENCH_fig1_nnz.json`` (machine-readable),
``benchmarks/output/fig1_nnz.txt`` (aligned table), and -- with
``--history`` -- one entry in ``benchmarks/history/fig1_history.jsonl``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.benchcircuits import build_circuit
from repro.linalg.sparse_lu import LUStats, SymbolicCache, factorize
from repro.reporting.tables import format_table
from repro.verify.perf import FIG1_HISTORY_PATH, record_entry

OUTPUT_DIR = Path(__file__).parent / "output"

#: the BENR-Jacobian step size used throughout (matches the old Fig. 1 report)
H = 1e-12

#: (case label, factory, params) sweep points.  The scaling column holds the
#: coupling fraction at 5% and grows the mesh to >= 50k nodes; the coupling
#: column holds the size and turns the coupling knob, which is what drags
#: C off the diagonal and blows the (C/h + G) factors up.
FULL_POINTS = [
    ("mesh_50x50_c5", "large_rc_mesh", dict(rows=50, cols=50, coupling_fraction=0.05)),
    ("mesh_50x50_c0", "large_rc_mesh", dict(rows=50, cols=50, coupling_fraction=0.0)),
    ("mesh_50x50_c10", "large_rc_mesh", dict(rows=50, cols=50, coupling_fraction=0.10)),
    ("mesh_50x50_c25", "large_rc_mesh", dict(rows=50, cols=50, coupling_fraction=0.25)),
    ("mesh_100x100_c5", "large_rc_mesh", dict(rows=100, cols=100, coupling_fraction=0.05)),
    ("mesh_150x150_c5", "large_rc_mesh", dict(rows=150, cols=150, coupling_fraction=0.05)),
    ("mesh_224x224_c5", "large_rc_mesh", dict(rows=224, cols=224, coupling_fraction=0.05)),
    ("pdn_2x70x70_c10", "pdn_multilayer", dict(rows=70, cols=70, layers=2, coupling_fraction=0.10)),
]

SMOKE_POINTS = [
    ("mesh_16x16_c0", "large_rc_mesh", dict(rows=16, cols=16, coupling_fraction=0.0)),
    ("mesh_16x16_c25", "large_rc_mesh", dict(rows=16, cols=16, coupling_fraction=0.25)),
    ("mesh_32x32_c5", "large_rc_mesh", dict(rows=32, cols=32, coupling_fraction=0.05)),
    ("pdn_2x12x12_c10", "pdn_multilayer", dict(rows=12, cols=12, layers=2, coupling_fraction=0.10)),
]


def _mean_bandwidth(matrix) -> float:
    """Average |row - col| over the non-zeros (scalar proxy for the spy plot)."""
    coo = matrix.tocoo()
    if coo.nnz == 0:
        return 0.0
    return float(np.mean(np.abs(coo.row - coo.col)))


def measure_point(case: str, factory: str, params: dict, h: float = H) -> dict:
    """Build one sweep circuit and measure the Fig.-1 quantities on it."""
    build_start = time.perf_counter()
    system = build_circuit(factory, **params).build()
    t_build = time.perf_counter() - build_start

    C = system.C_lin.tocsc()
    G = system.G_lin.tocsc()
    ChG = (C / h + G).tocsc()

    stats_g, stats_chg, stats_re = LUStats(), LUStats(), LUStats()
    lu_g = factorize(G, stats=stats_g, label="G")
    symbolic = SymbolicCache()
    lu_chg = factorize(ChG, stats=stats_chg, label="C/h+G", symbolic=symbolic)
    # same pattern, ordering served from the cache: the numeric-only phase
    lu_re = factorize(ChG, stats=stats_re, label="C/h+G (refactor)", symbolic=symbolic)
    if not lu_re.reused_symbolic:
        raise AssertionError(f"{case}: symbolic reuse did not engage on an identical pattern")
    if lu_re.nnz_factors != lu_chg.nnz_factors:
        raise AssertionError(
            f"{case}: symbolic-reuse fill {lu_re.nnz_factors} != fresh fill {lu_chg.nnz_factors}"
        )

    return {
        "case": case,
        "factory": factory,
        "params": params,
        "n": int(G.shape[0]),
        "h": h,
        "nnz_C": int(C.nnz),
        "nnz_G": int(G.nnz),
        "nnz_LU_G": int(lu_g.nnz_factors),
        "nnz_LU_ChG": int(lu_chg.nnz_factors),
        "factor_advantage": lu_chg.nnz_factors / max(lu_g.nnz_factors, 1),
        "bandwidth_C": _mean_bandwidth(C),
        "bandwidth_G": _mean_bandwidth(G),
        "t_build_seconds": t_build,
        "t_factor_G": stats_g.factor_time,
        "t_factor_ChG": stats_chg.factor_time,
        "t_refactor_ChG": stats_re.factor_time,
        "refactor_speedup": stats_chg.factor_time / max(stats_re.factor_time, 1e-12),
    }


def render_table(rows) -> str:
    return format_table(
        ["case", "n", "nnz(G)", "nnz(LU G)", "nnz(LU C/h+G)", "LU(C/h+G)/LU(G)",
         "t(LU G) s", "t(LU C/h+G) s", "t(refactor) s"],
        [[r["case"], r["n"], r["nnz_G"], r["nnz_LU_G"], r["nnz_LU_ChG"],
          round(r["factor_advantage"], 2), round(r["t_factor_G"], 3),
          round(r["t_factor_ChG"], 3), round(r["t_refactor_ChG"], 3)]
         for r in rows],
    )


def check_rows(rows, smoke: bool):
    """The paper's structural claims, asserted on the measured sweep."""
    failures = []
    for row in rows:
        # Fig. 1's core statement: once coupling drags C off the diagonal
        # (bandwidth > 0), the BENR Jacobian fills in strictly worse than G;
        # the zero-coupling control may at best tie (diagonal C adds no
        # pattern), never beat it
        coupled = row["bandwidth_C"] > 0.0
        if coupled and not row["nnz_LU_ChG"] > row["nnz_LU_G"]:
            failures.append(f"{row['case']}: LU(C/h+G) fill {row['nnz_LU_ChG']} "
                            f"does not exceed LU(G) fill {row['nnz_LU_G']}")
        if not coupled and row["nnz_LU_ChG"] < row["nnz_LU_G"]:
            failures.append(f"{row['case']}: uncoupled LU(C/h+G) fill "
                            f"{row['nnz_LU_ChG']} fell below LU(G) fill {row['nnz_LU_G']}")
    # the coupling knob must widen the gap monotonically at fixed size
    knob = [r for r in rows if r["factory"] == "large_rc_mesh"
            and r["n"] == min(x["n"] for x in rows)]
    knob.sort(key=lambda r: r["nnz_C"])
    advantages = [r["factor_advantage"] for r in knob]
    if advantages != sorted(advantages):
        failures.append(f"coupling sweep is not monotone in fill advantage: {advantages}")
    if not smoke:
        largest = max(rows, key=lambda r: r["n"])
        if largest["n"] < 50_000:
            failures.append(f"sweep peaked at n={largest['n']}, below the 50k-node floor")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized sweep (seconds, small meshes)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the fill-in gap holds")
    parser.add_argument("--json", type=Path, default=None,
                        help="payload path (default benchmarks/output/BENCH_fig1_nnz.json)")
    parser.add_argument("--history", nargs="?", const=None, default=False, metavar="PATH",
                        help="append this run to the fig1 JSONL history "
                             "(default benchmarks/history/fig1_history.jsonl)")
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    mode = "smoke" if args.smoke else "full"

    wall_start = time.perf_counter()
    rows = []
    for case, factory, params in points:
        row = measure_point(case, factory, params)
        rows.append(row)
        print(f"  {case}: n={row['n']} LU(G)={row['nnz_LU_G']} "
              f"LU(C/h+G)={row['nnz_LU_ChG']} "
              f"advantage={row['factor_advantage']:.2f} "
              f"refactor x{row['refactor_speedup']:.2f}")
    wall_seconds = time.perf_counter() - wall_start

    largest = max(rows, key=lambda r: r["n"])
    payload = {
        "benchmark": "fig1_nnz",
        "mode": mode,
        "h": H,
        "headline": (f"n={largest['n']}: LU(C/h+G) carries "
                     f"{largest['factor_advantage']:.1f}x the fill of LU(G); "
                     f"symbolic reuse refactors {largest['refactor_speedup']:.1f}x faster"),
        "wall_seconds": wall_seconds,
        "results": rows,
    }

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    json_path = args.json or (OUTPUT_DIR / "BENCH_fig1_nnz.json")
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    table = render_table(rows)
    (OUTPUT_DIR / "fig1_nnz.txt").write_text(table + "\n")
    print()
    print(table)
    print(f"\n{payload['headline']}")
    print(f"payload: {json_path}  ({wall_seconds:.1f}s)")

    if args.history is not False:
        history_path = Path(args.history) if args.history else FIG1_HISTORY_PATH
        series = {}
        for row in rows:
            series[f"{row['case']}/factor_advantage"] = row["factor_advantage"]
            series[f"{row['case']}/refactor_speedup"] = row["refactor_speedup"]
        entry = record_entry(series, mode=mode, history_path=history_path)
        print(f"recorded {len(entry['rates'])} series into {history_path}")

    if args.check:
        failures = check_rows(rows, smoke=args.smoke)
        if failures:
            for failure in failures:
                print(f"FIG1 CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("fig1 checks passed (fill-in gap, coupling monotonicity"
              + (")" if args.smoke else ", >=50k nodes)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
