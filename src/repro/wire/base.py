"""The wire-message machinery: registry, encode/decode, validation.

A wire message is a dataclass decorated with :func:`wire_message`.  The
decorator registers the class under its wire ``type`` name, stamps
``TYPE`` / ``VERSION`` class attributes, and appends an ``extra`` dict
field that carries any keys a *newer* peer sent that this process's
schema does not declare -- re-emitted verbatim on encode, so an old
relay never strips fields it does not understand.

Validation is structural, not semantic: each declared field's annotation
is checked against the incoming value (``str``, ``int``, ``float``,
``bool``, ``dict``, ``list`` and ``Optional`` combinations thereof --
ints pass where floats are declared, matching JSON's single number
type).  Semantic checks belong in an optional ``validate()`` method on
the message class, called after construction on both encode and decode.
"""

from __future__ import annotations

import typing
from dataclasses import MISSING, dataclass, field, fields
from typing import Dict, Optional, Tuple, Type

__all__ = ["WireError", "WireMessage", "wire_message", "encode", "decode",
           "registered_types"]


class WireError(ValueError):
    """A payload that does not conform to its declared schema."""


#: wire type name -> message class
_REGISTRY: Dict[str, type] = {}

#: reserved envelope keys, never treated as payload fields
_ENVELOPE_KEYS = ("type", "version")


class WireMessage:
    """Marker base class (set by the decorator; not for direct use)."""

    TYPE: typing.ClassVar[str]
    VERSION: typing.ClassVar[int]

    def validate(self) -> None:
        """Semantic validation hook; raise :class:`WireError` to reject."""


def _type_checker(annotation: object) -> Optional[Tuple[tuple, bool]]:
    """Map an annotation to ``(isinstance types, allow_none)``.

    Returns ``None`` for annotations we do not check (``object``,
    unions of concrete types, exotic generics) -- unknown shapes pass
    rather than rejecting valid traffic.
    """
    allow_none = False
    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if len(args) != 1:
            return None
        allow_none = True
        annotation = args[0]
        origin = typing.get_origin(annotation)
    if origin is not None:  # Dict[...], List[...]: check the container only
        annotation = origin
    simple = {str: (str,), bool: (bool,), int: (int,),
              float: (int, float), dict: (dict,), list: (list,)}
    types = simple.get(annotation)
    if types is None:
        return None
    return types, allow_none


def _check_fields(message: object) -> None:
    cls = type(message)
    for name, checker in cls._WIRE_CHECKS.items():  # type: ignore[attr-defined]
        value = getattr(message, name)
        types, allow_none = checker
        if value is None:
            if allow_none:
                continue
            raise WireError(
                f"{cls.TYPE}: field '{name}' must not be null")
        # bool is an int subclass; reject True where an int count is
        # declared only when bool itself is not the declared type
        if isinstance(value, bool) and bool not in types and float not in types:
            raise WireError(
                f"{cls.TYPE}: field '{name}' has wrong type bool")
        if not isinstance(value, types):
            raise WireError(
                f"{cls.TYPE}: field '{name}' has wrong type "
                f"{type(value).__name__}")


def wire_message(type_name: str, version: int = 1):
    """Class decorator: declare a dataclass as a named wire message."""

    def decorate(cls: type) -> type:
        if type_name in _REGISTRY:
            raise ValueError(f"duplicate wire type {type_name!r}")
        if not issubclass(cls, WireMessage):
            raise TypeError(f"{cls.__name__} must subclass WireMessage")
        annotations = dict(cls.__dict__.get("__annotations__", {}))
        if "extra" in annotations:
            raise ValueError(f"{cls.__name__}: 'extra' is reserved")
        # append the unknown-field carrier last so declared fields keep
        # their positional order
        annotations["extra"] = Dict[str, object]
        cls.__annotations__ = annotations
        setattr(cls, "extra", field(default_factory=dict, repr=False))
        datacls = dataclass(cls)
        datacls.TYPE = type_name
        datacls.VERSION = int(version)
        checks: Dict[str, Tuple[tuple, bool]] = {}
        for name, annotation in annotations.items():
            if name == "extra" or isinstance(annotation, str):
                continue
            checker = _type_checker(annotation)
            if checker is not None:
                checks[name] = checker
        datacls._WIRE_CHECKS = checks
        _REGISTRY[type_name] = datacls
        return datacls

    return decorate


def registered_types() -> Dict[str, type]:
    """A copy of the wire-type registry (``type name -> class``)."""
    return dict(_REGISTRY)


def encode(message: WireMessage) -> Dict[str, object]:
    """Render a message to its JSON-ready wire dict.

    The envelope (``type``, ``version``) comes first, then every
    declared field, then the ``extra`` passthrough keys (declared
    fields win on collision).
    """
    cls = type(message)
    if not hasattr(cls, "TYPE"):
        raise WireError(f"{cls.__name__} is not a @wire_message class")
    _check_fields(message)
    message.validate()
    data: Dict[str, object] = {"type": cls.TYPE, "version": cls.VERSION}
    for spec in fields(message):
        if spec.name == "extra":
            continue
        data[spec.name] = getattr(message, spec.name)
    for key, value in (message.extra or {}).items():
        data.setdefault(key, value)
    return data


def decode(data: object, expect: Optional[type] = None) -> WireMessage:
    """Validate a wire dict back into its typed message.

    ``expect`` pins the message class; it is also the fallback when the
    dict carries no ``type`` key (legacy peers, HTTP bodies).  Unknown
    keys are kept in ``.extra`` -- a newer peer's fields survive a
    decode/encode round trip.  Any ``version`` is accepted: additive
    schema evolution plus unknown-field tolerance is the compatibility
    contract.
    """
    if not isinstance(data, dict):
        raise WireError(
            f"wire message must be a JSON object, got {type(data).__name__}")
    type_name = data.get("type")
    if type_name is None:
        if expect is None:
            raise WireError("wire message has no 'type' field")
        cls = expect
    else:
        cls = _REGISTRY.get(str(type_name))
        if cls is None:
            raise WireError(f"unknown wire type {type_name!r}")
        if expect is not None and cls is not expect:
            raise WireError(
                f"expected {expect.TYPE!r} message, got {type_name!r}")
    known = {spec.name for spec in fields(cls)} - {"extra"}
    kwargs: Dict[str, object] = {}
    extra: Dict[str, object] = {}
    for key, value in data.items():
        if key in _ENVELOPE_KEYS:
            continue
        if key in known:
            kwargs[key] = value
        else:
            extra[key] = value
    missing = [spec.name for spec in fields(cls)
               if spec.name != "extra" and spec.name not in kwargs
               and spec.default is MISSING and spec.default_factory is MISSING]
    if missing:
        raise WireError(
            f"{cls.TYPE}: missing required field(s) {', '.join(missing)}")
    message = cls(**kwargs, extra=extra)
    _check_fields(message)
    message.validate()
    return message
