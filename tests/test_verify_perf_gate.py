"""Perf-trajectory tracker: history recording and the regression gate."""

import json

import pytest

from repro.verify.perf import (
    check_perf_regression,
    extract_rates,
    gate_payload_file,
    load_history,
    record_run,
    tracked_medians,
)


def payload(rate_er=10000.0, rate_benr=4000.0, mode="smoke"):
    """A minimal BENCH_hotpath.json-shaped payload."""
    return {
        "benchmark": "hotpath",
        "mode": mode,
        "results": [
            {"case": "rc_mesh_ramp", "method": "ER",
             "cached": {"steps_per_second": rate_er},
             "uncached": {"steps_per_second": rate_er / 3.0}},
            {"case": "rc_mesh_ramp", "method": "BENR",
             "cached": {"steps_per_second": rate_benr},
             "uncached": {"steps_per_second": rate_benr / 1.5}},
        ],
    }


def seed_history(path, rates, mode="smoke"):
    for rate in rates:
        record_run(payload(rate_er=rate, mode=mode), path)


class TestExtractAndRecord:
    def test_extract_rates_reads_cached_mode(self):
        rates = extract_rates(payload(rate_er=1234.0))
        assert rates[("rc_mesh_ramp", "er")] == 1234.0
        assert rates[("rc_mesh_ramp", "benr")] == 4000.0

    def test_record_appends_jsonl(self, tmp_path):
        history = tmp_path / "history.jsonl"
        entry = record_run(payload(), history)
        record_run(payload(), history)
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        parsed = json.loads(lines[0])
        assert parsed["mode"] == "smoke"
        assert parsed["rates"]["rc_mesh_ramp/er"] == 10000.0
        assert entry["recorded_at"] > 0

    def test_load_history_tolerates_missing_file(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


class TestMedians:
    def test_median_per_mode(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [100.0, 110.0, 90.0])
        seed_history(history, [999.0], mode="full")
        medians = tracked_medians(load_history(history), "smoke")
        assert medians["rc_mesh_ramp/er"] == (100.0, 3)
        medians_full = tracked_medians(load_history(history), "full")
        assert medians_full["rc_mesh_ramp/er"] == (999.0, 1)

    def test_window_keeps_recent_runs(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10.0] * 30 + [100.0] * 5)
        medians = tracked_medians(load_history(history), "smoke", window=5)
        assert medians["rc_mesh_ramp/er"][0] == 100.0


class TestRegressionGate:
    def test_seeded_regression_fails_the_gate(self, tmp_path):
        """The acceptance scenario: a >20% steps/sec drop against the
        tracked median must fail."""
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10200.0, 9800.0])
        slow = payload(rate_er=7000.0)  # 30% below the 10000 median
        regressions = check_perf_regression(slow, history)
        assert len(regressions) == 1
        regression = regressions[0]
        assert regression.case == "rc_mesh_ramp" and regression.method == "er"
        assert "below the tracked median" in regression.describe()

    def test_small_drop_passes(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10200.0, 9800.0])
        assert check_perf_regression(payload(rate_er=8500.0), history) == []

    def test_improvement_passes(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10200.0, 9800.0])
        assert check_perf_regression(payload(rate_er=20000.0), history) == []

    def test_gate_waits_for_min_history(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10000.0])  # only two runs on record
        assert check_perf_regression(payload(rate_er=1000.0), history) == []

    def test_gate_is_mode_scoped(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0] * 3, mode="full")
        # smoke payload has no smoke history: gate stays silent
        assert check_perf_regression(payload(rate_er=1000.0), history) == []

    def test_one_slow_run_cannot_lower_the_median_much(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10000.0, 10000.0, 2000.0])
        regressions = check_perf_regression(payload(rate_er=7000.0), history)
        assert len(regressions) == 1


class TestGatePayloadFile:
    def test_checks_before_recording(self, tmp_path):
        """A regressed run must not vote itself into its own baseline."""
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10000.0, 10000.0])
        slow_file = tmp_path / "BENCH_hotpath.json"
        slow_file.write_text(json.dumps(payload(rate_er=5000.0)))
        regressions, entry = gate_payload_file(slow_file, history)
        assert len(regressions) == 1
        assert entry is not None
        # ... but the run IS recorded afterwards (honest history)
        assert len(load_history(history)) == 4

    def test_no_record_mode(self, tmp_path):
        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0] * 3)
        ok_file = tmp_path / "BENCH_hotpath.json"
        ok_file.write_text(json.dumps(payload(rate_er=9900.0)))
        regressions, entry = gate_payload_file(ok_file, history, record=False)
        assert regressions == [] and entry is None
        assert len(load_history(history)) == 3


class TestCliGate:
    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.verify.__main__ import main

        history = tmp_path / "h.jsonl"
        seed_history(history, [10000.0, 10000.0, 10000.0])
        good = tmp_path / "good.json"
        good.write_text(json.dumps(payload(rate_er=9500.0)))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload(rate_er=1000.0)))

        assert main(["--perf-check", "--input", str(good),
                     "--history", str(history)]) == 0
        assert main(["--perf-check", "--input", str(bad),
                     "--history", str(history)]) == 1
        err = capsys.readouterr().err
        assert "PERF REGRESSION" in err
        assert main(["--perf-check", "--input", str(tmp_path / "none.json"),
                     "--history", str(history)]) == 2
