"""Campaign result store and incremental aggregation.

Workers return one :class:`ScenarioOutcome` per scenario -- a compact,
picklable record of the run's Table-I counters, the circuit's structural
statistics, downsampled waveforms of the observed nodes and any failure
information.  :class:`CampaignResult` collects them and derives the
aggregate views: per-method comparison rows with speedups and maximum
error against a reference method, JSON persistence, and simple grouping
helpers the reporting layer renders from.

Aggregation is *incremental*: every index the views need -- name lookup,
variant grouping, per-method totals, the static part of each table row --
is maintained by :meth:`CampaignResult.add` as outcomes arrive, so
rendering a table from a campaign of thousands of scenarios never
re-scans the full outcome list, and a streaming consumer (the journal's
checkpoint lines, a progress UI) can read consistent aggregates
mid-campaign from :meth:`CampaignResult.aggregates`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.scenario import Scenario

__all__ = [
    "ScenarioOutcome",
    "CampaignResult",
    "IncrementalAggregates",
    "DETERMINISTIC_SUMMARY_KEYS",
]

#: summary keys that must be bit-identical between serial and parallel
#: executions of the same scenario (everything except wall-clock timing);
#: "observables" covers the streaming per-node summaries, whose update
#: rule is shared with the stored-state derivation (bit-deterministic)
DETERMINISTIC_SUMMARY_KEYS = (
    "method", "#step", "#rejected", "#NRa", "#ma", "#LU",
    "peak_factor_nnz", "completed", "failure", "t_end_reached", "num_points",
    "observables",
)


@dataclass
class ScenarioOutcome:
    """What one scenario produced (success or not)."""

    scenario: Scenario
    #: "ok" | "failed" (simulation reported incomplete) | "error" | "timeout"
    status: str = "error"
    #: :meth:`SimulationResult.summary` counters (plus runtime)
    summary: Dict[str, object] = field(default_factory=dict)
    #: structural statistics of the assembled MNA (#N, #Dev, nnzC, nnzG)
    structure: Dict[str, int] = field(default_factory=dict)
    #: uniform sample grid the observed waveforms were resampled onto
    sample_times: List[float] = field(default_factory=list)
    #: node -> waveform samples on ``sample_times``
    samples: Dict[str, List[float]] = field(default_factory=dict)
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: wall-clock seconds of the whole scenario (build + DC + transient)
    runtime_seconds: float = 0.0
    #: pid of the executing process
    worker: Optional[int] = None
    #: whether the worker reused a cached MNA assembly for the circuit
    cache_hit: bool = False
    #: whether the worker reused a cached DC operating point
    dc_cache_hit: bool = False
    #: None when this outcome was simulated by the campaign that reports
    #: it; "cache" / "journal" / "queue" when it was adopted without
    #: this campaign simulating anything ("queue": another campaign's
    #: broker job, or the duplicate delivery of an in-campaign twin)
    reused_from: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def reused(self) -> bool:
        """Whether the outcome was adopted (cache/journal) instead of run."""
        return self.reused_from is not None

    @property
    def observables(self) -> Dict[str, Dict[str, float]]:
        """Streaming per-observed-node summaries (min/max/final/L2/energy).

        Populated for every run that observes nodes, including
        ``store_states=False`` scenarios whose full waveforms were never
        materialized -- the memory-bounded path of 100k-node campaigns.
        """
        return dict(self.summary.get("observables") or {})

    def deterministic_summary(self) -> Dict[str, object]:
        """The summary restricted to scheduling-independent counters."""
        return {k: self.summary.get(k) for k in DETERMINISTIC_SUMMARY_KEYS}

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "status": self.status,
            "summary": dict(self.summary),
            "structure": dict(self.structure),
            "sample_times": list(self.sample_times),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "error": self.error,
            "traceback": self.traceback,
            "runtime_seconds": self.runtime_seconds,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "dc_cache_hit": self.dc_cache_hit,
            "reused_from": self.reused_from,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioOutcome":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            status=str(data.get("status", "error")),
            summary=dict(data.get("summary", {})),
            structure=dict(data.get("structure", {})),
            sample_times=list(data.get("sample_times", [])),
            samples={k: list(v) for k, v in data.get("samples", {}).items()},
            error=data.get("error"),
            traceback=data.get("traceback"),
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            worker=data.get("worker"),
            cache_hit=bool(data.get("cache_hit", False)),
            dc_cache_hit=bool(data.get("dc_cache_hit", False)),
            reused_from=data.get("reused_from"),
        )


def _max_abs_error(outcome: ScenarioOutcome, reference: ScenarioOutcome) -> Optional[float]:
    """Maximum |signal - reference| over all shared observed nodes."""
    worst: Optional[float] = None
    for node, values in outcome.samples.items():
        ref_values = reference.samples.get(node)
        if ref_values is None or len(ref_values) != len(values):
            continue
        err = max(abs(a - b) for a, b in zip(values, ref_values)) if values else 0.0
        worst = err if worst is None else max(worst, err)
    return worst


class IncrementalAggregates:
    """Running per-method totals, updated one outcome at a time.

    Cheap enough to update on every delivery, rich enough for progress
    displays and journal checkpoints: per method (lower-cased) the
    outcome count, ok count, total runtime and total accepted steps,
    plus campaign-wide totals.
    """

    def __init__(self):
        self.total = 0
        self.ok = 0
        self.runtime_seconds = 0.0
        self.per_method: Dict[str, Dict[str, object]] = {}

    def update(self, outcome: ScenarioOutcome) -> None:
        self.total += 1
        self.ok += 1 if outcome.ok else 0
        self.runtime_seconds += outcome.runtime_seconds
        method = outcome.scenario.method.strip().lower()
        bucket = self.per_method.setdefault(method, {
            "count": 0, "ok": 0, "runtime_seconds": 0.0, "steps": 0,
        })
        bucket["count"] += 1
        bucket["ok"] += 1 if outcome.ok else 0
        bucket["runtime_seconds"] += outcome.runtime_seconds
        bucket["steps"] += int(outcome.summary.get("#step") or 0)

    def snapshot(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "ok": self.ok,
            "runtime_seconds": self.runtime_seconds,
            "per_method": {m: dict(b) for m, b in self.per_method.items()},
        }


#: static (reference-independent) columns of one scenario's table row
def _base_row(outcome: ScenarioOutcome) -> Dict[str, object]:
    scenario = outcome.scenario
    row: Dict[str, object] = {
        "scenario": scenario.name,
        "circuit": scenario.circuit.factory,
        "method": outcome.summary.get("method", scenario.method),
        "status": outcome.status,
        "#N": outcome.structure.get("#N"),
        "nnzC": outcome.structure.get("nnzC"),
        "nnzG": outcome.structure.get("nnzG"),
        "#step": outcome.summary.get("#step"),
        "#NRa": outcome.summary.get("#NRa"),
        "#ma": outcome.summary.get("#ma"),
        "#LU": outcome.summary.get("#LU"),
        "RT(s)": outcome.summary.get("RT(s)"),
        "peak_factor_nnz": outcome.summary.get("peak_factor_nnz"),
    }
    for tag, value in scenario.tags.items():
        row.setdefault(str(tag), value)
    return row


class CampaignResult:
    """All outcomes of one campaign plus (incrementally maintained)
    aggregate views.

    Append through :meth:`add` (or the constructor) only -- every view
    below reads the indices ``add`` maintains, never the raw list, so a
    direct ``outcomes.append`` would desynchronize them.
    """

    def __init__(self, outcomes: Optional[Iterable[ScenarioOutcome]] = None,
                 metadata: Optional[Dict[str, object]] = None):
        self.outcomes: List[ScenarioOutcome] = []
        #: execution metadata (mode, workers, wall time, base options...)
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._by_name: Dict[str, ScenarioOutcome] = {}
        self._by_variant: Dict[str, List[ScenarioOutcome]] = {}
        #: (variant key, lower-cased method) -> first outcome; the O(1)
        #: reference lookup of :meth:`rows`
        self._by_variant_method: Dict[Tuple[str, str], ScenarioOutcome] = {}
        #: pre-computed static table row per outcome (parallel to
        #: ``outcomes``); reference columns are layered on at render time
        self._base_rows: List[Dict[str, object]] = []
        #: cached variant key per outcome (the canonical JSON is not free)
        self._variant_keys: List[str] = []
        self._aggregates = IncrementalAggregates()
        for outcome in (outcomes or []):
            self.add(outcome)

    # -- collection ------------------------------------------------------------------

    def add(self, outcome: ScenarioOutcome) -> None:
        """Append one outcome and fold it into every aggregate index."""
        self.outcomes.append(outcome)
        variant = outcome.scenario.variant_key()
        method = outcome.scenario.method.strip().lower()
        self._by_name.setdefault(outcome.scenario.name, outcome)
        self._by_variant.setdefault(variant, []).append(outcome)
        self._by_variant_method.setdefault((variant, method), outcome)
        self._base_rows.append(_base_row(outcome))
        self._variant_keys.append(variant)
        self._aggregates.update(outcome)

    def merge(self, other: "CampaignResult",
              replace: bool = False) -> "CampaignResult":
        """Fold another campaign's outcomes in (the re-plan primitive).

        Outcomes for scenario names this campaign already has are skipped
        unless ``replace`` (then the incoming outcome wins and the
        indices are rebuilt).  Returns ``self``.
        """
        if replace:
            incoming = {o.scenario.name: o for o in other.outcomes}
            merged = [incoming.pop(o.scenario.name, o) for o in self.outcomes]
            merged.extend(o for o in other.outcomes
                          if o.scenario.name in incoming)
            fresh = CampaignResult(merged, metadata=self.metadata)
            self.__dict__.update(fresh.__dict__)
            return self
        for outcome in other.outcomes:
            if outcome.scenario.name not in self._by_name:
                self.add(outcome)
        return self

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def outcome_for(self, name: str) -> ScenarioOutcome:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no outcome for scenario {name!r}") from None

    @property
    def num_ok(self) -> int:
        return self._aggregates.ok

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    # -- aggregation -----------------------------------------------------------------

    def aggregates(self) -> Dict[str, object]:
        """Snapshot of the running per-method totals (streaming-safe)."""
        return self._aggregates.snapshot()

    def by_variant(self) -> Dict[str, List[ScenarioOutcome]]:
        """Group outcomes by circuit+options identity (method varies within)."""
        return {variant: list(group)
                for variant, group in self._by_variant.items()}

    def rows(self, reference_method: Optional[str] = None) -> List[Dict[str, object]]:
        """Flatten into one comparison row per scenario.

        With a ``reference_method``, scenarios gain ``SP`` (reference
        runtime divided by own runtime; >1 means faster than the
        reference) and ``max_err`` (maximum waveform deviation from the
        reference run of the same variant) columns, ``None`` where the
        reference is missing or failed -- the "NA" cells of Table I.

        The static columns come from the per-outcome rows maintained by
        :meth:`add`; only the two reference columns are computed here.
        """
        key = reference_method.strip().lower() if reference_method else None
        rows = []
        for outcome, base, variant in zip(self.outcomes, self._base_rows,
                                          self._variant_keys):
            row = dict(base)
            if reference_method:
                reference = self._by_variant_method.get((variant, key))
                sp = None
                err = None
                if reference is not None and reference.ok and outcome.ok:
                    ref_rt = reference.summary.get("RT(s)") or 0.0
                    own_rt = outcome.summary.get("RT(s)") or 0.0
                    if own_rt > 0:
                        sp = ref_rt / own_rt
                    if reference is not outcome:
                        err = _max_abs_error(outcome, reference)
                    else:
                        err = 0.0
                row["SP"] = sp
                row["max_err"] = err
            rows.append(row)
        return rows

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "metadata": dict(self.metadata),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        return cls(
            outcomes=[ScenarioOutcome.from_dict(o) for o in data.get("outcomes", [])],
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignResult":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"CampaignResult(scenarios={len(self.outcomes)}, ok={self.num_ok}, "
            f"failed={len(self.outcomes) - self.num_ok})"
        )
