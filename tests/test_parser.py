"""Unit tests for the SPICE-like netlist parser (repro.circuit.parser)."""

import pytest

from repro.circuit.devices.diode import DiodeModel
from repro.circuit.devices.mosfet import MOSFETModel
from repro.circuit.parser import NetlistSyntaxError, parse_netlist, parse_value
from repro.circuit.sources import DC, EXP, PULSE, PWL, SIN


class TestParseValue:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("1", 1.0),
            ("1.5", 1.5),
            ("1k", 1e3),
            ("2.2u", 2.2e-6),
            ("10meg", 10e6),
            ("3n", 3e-9),
            ("4p", 4e-12),
            ("5f", 5e-15),
            ("1e-9", 1e-9),
            ("-2.5m", -2.5e-3),
            ("1.5K", 1.5e3),
            ("100pF", 100e-12),
        ],
    )
    def test_values(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            parse_value("abc")


SIMPLE_NETLIST = """
* simple RC low-pass
V1 in 0 PULSE(0 1 0 10p 10p 0.4n 1n)
R1 in out 1k
C1 out 0 1p
.tran 1p 1n
.end
"""


class TestBasicParsing:
    def test_elements_created(self):
        parsed = parse_netlist(SIMPLE_NETLIST)
        ckt = parsed.circuit
        assert len(ckt.elements) == 3
        names = {el.name for el in ckt.elements}
        assert names == {"V1", "R1", "C1"}

    def test_tran_directive(self):
        parsed = parse_netlist(SIMPLE_NETLIST)
        assert parsed.tran is not None
        assert parsed.tran.tstep == pytest.approx(1e-12)
        assert parsed.tran.tstop == pytest.approx(1e-9)

    def test_title_line_detected(self):
        text = "my circuit title\nR1 a 0 1k\n.end\n"
        parsed = parse_netlist(text)
        assert parsed.circuit.title == "my circuit title"
        assert len(parsed.circuit.elements) == 1

    def test_comments_and_blank_lines_ignored(self):
        text = "R1 a 0 1k\n\n* a comment\nC1 a 0 1p ; trailing comment\n"
        parsed = parse_netlist(text)
        assert len(parsed.circuit.elements) == 2

    def test_continuation_lines(self):
        text = "V1 in 0 PWL(0 0\n+ 1n 1)\nR1 in 0 1k\n"
        parsed = parse_netlist(text)
        source = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert isinstance(source.waveform, PWL)
        assert source.waveform.value(0.5e-9) == pytest.approx(0.5)

    def test_built_circuit_simulates(self):
        from repro import simulate

        parsed = parse_netlist(SIMPLE_NETLIST)
        result = simulate(parsed.circuit, "er", t_stop=parsed.tran.tstop,
                          h_init=10e-12)
        assert result.stats.completed
        assert abs(result.voltage("out")[-1]) < 1.5


class TestWaveformParsing:
    def test_dc_value(self):
        parsed = parse_netlist("V1 a 0 3.3\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert isinstance(src.waveform, DC)
        assert src.waveform.value(0) == pytest.approx(3.3)

    def test_dc_keyword(self):
        parsed = parse_netlist("V1 a 0 DC 1.8\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert src.waveform.value(0) == pytest.approx(1.8)

    def test_pulse(self):
        parsed = parse_netlist("V1 a 0 PULSE(0 1 1n 0.1n 0.1n 2n 5n)\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert isinstance(src.waveform, PULSE)
        assert src.waveform.period == pytest.approx(5e-9)

    def test_sin(self):
        parsed = parse_netlist("V1 a 0 SIN(0 1 1g)\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert isinstance(src.waveform, SIN)
        assert src.waveform.freq == pytest.approx(1e9)

    def test_exp(self):
        parsed = parse_netlist("V1 a 0 EXP(0 1 1n 0.5n 3n 0.5n)\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "V1")
        assert isinstance(src.waveform, EXP)

    def test_current_source_waveform(self):
        parsed = parse_netlist("I1 a 0 PWL(0 0 1n 1m)\nR1 a 0 1k\n")
        src = next(el for el in parsed.circuit.elements if el.name == "I1")
        assert src.waveform.value(1e-9) == pytest.approx(1e-3)


class TestModelsAndDevices:
    NETLIST = """
V1 vdd 0 1.0
Vg g 0 PULSE(0 1 0 10p 10p 0.4n 1n)
M1 out g 0 0 nch W=1u L=0.1u
M2 out g vdd vdd pch W=2u L=0.1u
D1 out 0 dmod
C1 out 0 1f
.model nch nmos (level=2 vto=0.4 kp=2e-4)
.model pch pmos (level=2 vto=0.4 kp=1e-4)
.model dmod d (is=1e-14 cjo=1e-15)
"""

    def test_models_registered(self):
        parsed = parse_netlist(self.NETLIST)
        nch = parsed.circuit.get_model("nch")
        pch = parsed.circuit.get_model("pch")
        dmod = parsed.circuit.get_model("dmod")
        assert isinstance(nch, MOSFETModel) and nch.mos_type == "nmos"
        assert isinstance(pch, MOSFETModel) and pch.mos_type == "pmos"
        assert isinstance(dmod, DiodeModel)
        assert nch.vt0 == pytest.approx(0.4)
        assert nch.level == 2

    def test_devices_reference_models(self):
        parsed = parse_netlist(self.NETLIST)
        ckt = parsed.circuit
        assert ckt.num_devices == 3
        m1 = next(d for d in ckt.devices if d.name == "M1")
        assert m1.model.mos_type == "nmos"
        assert m1.w == pytest.approx(1e-6)
        assert m1.l == pytest.approx(0.1e-6)

    def test_model_defined_after_device_is_found(self):
        text = "D1 a 0 dlate\nR1 a 0 1k\n.model dlate d (is=1e-15)\n"
        parsed = parse_netlist(text)
        assert parsed.circuit.devices[0].model.isat == pytest.approx(1e-15)

    def test_unknown_model_raises(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("M1 d g 0 0 nomodel\nR1 d 0 1k\n")


class TestDirectives:
    def test_ic_directive(self):
        parsed = parse_netlist("R1 a 0 1k\nC1 a 0 1p\n.ic v(a)=0.5\n")
        assert parsed.circuit.initial_conditions == {"a": 0.5}

    def test_options_directive(self):
        parsed = parse_netlist("R1 a 0 1k\n.options reltol=1e-4 abstol=1n\n")
        assert parsed.options["reltol"] == pytest.approx(1e-4)
        assert parsed.options["abstol"] == pytest.approx(1e-9)

    def test_end_stops_parsing(self):
        parsed = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 1k\n")
        assert len(parsed.circuit.elements) == 1

    def test_unknown_directive_raises(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("R1 a 0 1k\n.fourier 1k v(a)\n")


class TestErrors:
    def test_unknown_card(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("X1 a b sub\n")

    def test_malformed_value(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("R1 a 0 abc\n")

    def test_error_reports_line_number(self):
        try:
            parse_netlist("R1 a 0 1k\nR2 b 0 xyz\n")
        except NetlistSyntaxError as exc:
            assert exc.line_no == 2
        else:
            pytest.fail("expected NetlistSyntaxError")

    def test_empty_netlist(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("* nothing but comments\n")

    def test_stray_continuation(self):
        with pytest.raises(NetlistSyntaxError):
            parse_netlist("+ R1 a 0 1k\n")

    def test_controlled_sources(self):
        parsed = parse_netlist(
            "V1 in 0 1\nR1 in 0 1k\nE1 out 0 in 0 2.0\nR2 out 0 1k\n"
            "G1 out2 0 in 0 1m\nR3 out2 0 1k\n"
        )
        assert len(parsed.circuit.elements) == 6
