"""Golden-store orphan pruning tests (``python -m repro.verify --prune-orphans``)."""

import numpy as np
import pytest

from repro.campaign import CircuitSpec, Scenario
from repro.verify.golden import GoldenStore


def family_scenarios(num_segments: int, methods=("benr", "er")):
    """A tiny 'family': one circuit parameterization, several methods."""
    return [
        Scenario(
            name=f"fam/seg{num_segments}/{method}",
            circuit=CircuitSpec("rc_ladder", {"num_segments": num_segments}),
            method=method,
            options={"t_stop": 1e-10},
            observe=["n1"],
        )
        for method in methods
    ]


def save_goldens(store, scenarios):
    times = np.linspace(0.0, 1e-10, 11)
    for scenario in scenarios:
        store.save(scenario, times, {"n1": np.zeros_like(times)},
                   tolerance=1e-5)


class TestPruneOrphans:
    def test_reparameterization_orphans_exactly_the_old_keys(self, tmp_path):
        """Re-parameterizing a family (num_segments 4 -> 6) orphans the
        old parameterization's goldens and nothing else."""
        store = GoldenStore(tmp_path / "goldens")
        old = family_scenarios(num_segments=4)
        kept = family_scenarios(num_segments=8)
        save_goldens(store, old + kept)
        assert len(store.keys()) == 4

        new_plan = family_scenarios(num_segments=6) + kept
        live = [s.content_hash() for s in new_plan]
        orphans = store.orphans(live)
        assert sorted(orphans) == sorted(s.content_hash() for s in old)

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = GoldenStore(tmp_path / "goldens")
        save_goldens(store, family_scenarios(num_segments=4))
        orphans = store.prune_orphans(live_keys=[])
        assert len(orphans) == 2
        assert len(store.keys()) == 2, "dry run must not touch files"

    def test_delete_removes_npz_and_sidecar(self, tmp_path):
        store = GoldenStore(tmp_path / "goldens")
        old = family_scenarios(num_segments=4)
        kept = family_scenarios(num_segments=8)
        save_goldens(store, old + kept)
        live = [s.content_hash() for s in kept]
        deleted = store.prune_orphans(live, delete=True)
        assert sorted(deleted) == sorted(s.content_hash() for s in old)
        assert sorted(store.keys()) == sorted(live)
        for key in deleted:
            assert not (store.root / f"{key}.npz").exists()
            assert not (store.root / f"{key}.json").exists()
        # the kept goldens still load
        samples, meta = store.load(kept[0])
        assert "n1" in samples

    def test_rename_does_not_orphan(self, tmp_path):
        """Scenario names are outside the content hash: renaming a sweep
        must not orphan its goldens."""
        store = GoldenStore(tmp_path / "goldens")
        scenarios = family_scenarios(num_segments=4)
        save_goldens(store, scenarios)
        renamed = [Scenario.from_dict({**s.to_dict(), "name": f"new/{i}"})
                   for i, s in enumerate(scenarios)]
        live = [s.content_hash() for s in renamed]
        assert store.orphans(live) == []

    def test_empty_store(self, tmp_path):
        store = GoldenStore(tmp_path / "nonexistent")
        assert store.prune_orphans(live_keys=["abc"], delete=True) == []


class TestPruneCLI:
    def test_committed_goldens_are_all_live(self):
        """The repo's checked-in goldens must match the current matrix
        plan exactly -- otherwise a re-parameterization forgot to prune."""
        from repro.verify.golden import GoldenStore as Store
        from repro.verify.matrix import DEFAULT_GOLDEN_ROOT, planned_golden_keys

        store = Store(DEFAULT_GOLDEN_ROOT)
        if not store.keys():
            pytest.skip("no goldens committed")
        assert store.orphans(planned_golden_keys()) == []

    def test_cli_dry_run_and_delete(self, tmp_path, capsys):
        from repro.verify.__main__ import main

        store = GoldenStore(tmp_path / "goldens")
        save_goldens(store, family_scenarios(num_segments=4))
        code = main(["--prune-orphans", "--goldens", str(store.root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 goldens orphaned" in out
        assert "dry run" in out
        assert len(store.keys()) == 2

        code = main(["--prune-orphans", "--goldens", str(store.root), "--yes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 goldens deleted" in out
        assert store.keys() == []
