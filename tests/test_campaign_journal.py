"""Journal, checkpoint/resume and adaptive-scheduling tests."""

import json

import pytest

from repro.campaign import (
    CampaignJournal,
    JournalContextError,
    RuntimeModel,
    Scenario,
    grid_sweep,
    plan_schedule,
    run_campaign,
)
from repro.reporting import DETERMINISTIC_COLUMNS, render_campaign_table
from repro.core.options import SimOptions

FAST_OPTIONS = SimOptions(t_stop=0.1e-9, h_init=2e-12, store_states=False)


def small_scenarios(methods=("benr", "er"), budgets=(1e-3, 1e-4)):
    return grid_sweep(
        circuits=[("rc_mesh", {"rows": 4, "cols": 4, "coupling_fraction": 0.5})],
        methods=list(methods),
        option_grid={"err_budget": list(budgets)},
        observe=["n2_2"],
    )


def journal_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line]


def truncate_to_outcomes(path, keep: int):
    """Rewrite the journal keeping the header and the first ``keep``
    outcome lines -- the on-disk state of an interrupted campaign."""
    kept, outcomes = [], 0
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record["type"] == "outcome":
            outcomes += 1
            if outcomes > keep:
                continue
        if record["type"] == "checkpoint" and outcomes > keep:
            continue
        kept.append(line)
    path.write_text("\n".join(kept) + "\n")


class TestJournalFile:
    def test_records_header_outcomes_and_checkpoints(self, tmp_path):
        path = tmp_path / "run.jsonl"
        scenarios = small_scenarios()
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path, checkpoint_every=2)
        records = journal_lines(path)
        kinds = [r["type"] for r in records]
        assert kinds[0] == "header"
        assert kinds.count("outcome") == len(scenarios)
        # 4 outcomes, checkpoint every 2 -> at least 2 checkpoints
        assert kinds.count("checkpoint") >= 2
        last_checkpoint = [r for r in records if r["type"] == "checkpoint"][-1]
        assert last_checkpoint["done"] == len(scenarios)
        assert last_checkpoint["aggregates"]["ok"] == len(scenarios)
        per_method = last_checkpoint["aggregates"]["per_method"]
        assert set(per_method) == {"benr", "er"}

    def test_replay_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        scenarios = small_scenarios()
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        with path.open("a") as handle:
            handle.write('{"type": "outcome", "hash": "interru')
        header, outcomes = CampaignJournal(path).replay()
        assert header is not None
        assert len(outcomes) == len(scenarios)

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        scenarios = small_scenarios(methods=("er",), budgets=(1e-3,))
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        # not resumed -> rewritten from scratch, not appended
        records = journal_lines(path)
        assert sum(1 for r in records if r["type"] == "header") == 1
        assert sum(1 for r in records if r["type"] == "outcome") == len(scenarios)


class TestResume:
    def test_interrupted_then_resumed_matches_uninterrupted(self, tmp_path):
        """The acceptance round-trip: interrupt after k outcomes, resume,
        and the aggregate tables over the deterministic columns are
        byte-identical to the uninterrupted run's."""
        scenarios = small_scenarios()
        path = tmp_path / "run.jsonl"
        uninterrupted = run_campaign(scenarios, base_options=FAST_OPTIONS,
                                     mode="serial", journal=path)
        columns = list(DETERMINISTIC_COLUMNS) + ["max_err"]
        expected_table = render_campaign_table(
            uninterrupted, reference_method="benr", columns=columns)

        # interrupt: keep only the first 2 outcomes in the journal
        truncate_to_outcomes(path, keep=2)
        resumed = run_campaign(scenarios, base_options=FAST_OPTIONS,
                               mode="serial", journal=path, resume=True)
        assert resumed.metadata["num_resumed"] == 2
        assert resumed.metadata["num_executed"] == 2
        resumed_table = render_campaign_table(
            resumed, reference_method="benr", columns=columns)
        assert resumed_table == expected_table
        for a, b in zip(uninterrupted, resumed):
            assert a.deterministic_summary() == b.deterministic_summary()
            assert a.samples == b.samples

        # the journal now covers everything: resuming again runs nothing
        third = run_campaign(scenarios, base_options=FAST_OPTIONS,
                             mode="serial", journal=path, resume=True)
        assert third.metadata["num_executed"] == 0
        assert third.metadata["num_resumed"] == len(scenarios)
        assert render_campaign_table(third, reference_method="benr",
                                     columns=columns) == expected_table

    def test_resumed_outcomes_are_marked(self, tmp_path):
        scenarios = small_scenarios(methods=("er",), budgets=(1e-3, 1e-4))
        path = tmp_path / "run.jsonl"
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        truncate_to_outcomes(path, keep=1)
        resumed = run_campaign(scenarios, base_options=FAST_OPTIONS,
                               mode="serial", journal=path, resume=True)
        marks = [o.reused_from for o in resumed]
        assert marks.count("journal") == 1
        assert marks.count(None) == 1

    def test_resume_reruns_timeout_outcomes(self, tmp_path):
        """Recorded timeouts are wall-clock policy, not scenario results:
        resuming (typically with a bigger budget) re-runs them."""
        from repro.campaign import CircuitSpec

        slow = Scenario(
            name="slow",
            circuit=CircuitSpec("rc_mesh", {"rows": 6, "cols": 6}),
            method="benr",
            options={"t_stop": 1e-9, "h_init": 1e-14, "h_max": 1e-14},
        )
        path = tmp_path / "run.jsonl"
        first = run_campaign([slow], mode="serial", journal=path, timeout=0.2)
        assert first.outcome_for("slow").status == "timeout"
        second = run_campaign([slow], mode="serial", journal=path,
                              resume=True, timeout=0.2)
        assert second.metadata["num_resumed"] == 0
        assert second.metadata["num_executed"] == 1

    def test_resume_reruns_recorded_errors(self, tmp_path):
        """An error line in the journal may be infrastructure debris
        (dead workers, full disk); resume must give it a fresh chance
        instead of making the failure permanent."""
        import json as json_module

        from repro.campaign import CircuitSpec
        from repro.campaign.backends.base import ExecutionBackend

        scenario = small_scenarios(methods=("er",), budgets=(1e-3,))[0]
        path = tmp_path / "run.jsonl"
        run_campaign([scenario], base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        # forge the recorded outcome into a backend-synthesized failure
        lines = []
        for line in path.read_text().splitlines():
            record = json_module.loads(line)
            if record["type"] == "outcome":
                record["data"] = ExecutionBackend.failure_outcome(
                    scenario.to_dict(), "no workers available")
            lines.append(json_module.dumps(record))
        path.write_text("\n".join(lines) + "\n")

        resumed = run_campaign([scenario], base_options=FAST_OPTIONS,
                               mode="serial", journal=path, resume=True)
        assert resumed.metadata["num_resumed"] == 0
        assert resumed.metadata["num_executed"] == 1
        assert resumed.outcome_for(scenario.name).ok

    def test_resume_refuses_different_context(self, tmp_path):
        scenarios = small_scenarios(methods=("er",), budgets=(1e-3,))
        path = tmp_path / "run.jsonl"
        run_campaign(scenarios, base_options=FAST_OPTIONS, mode="serial",
                     journal=path)
        other = SimOptions(t_stop=0.2e-9, h_init=2e-12, store_states=False)
        with pytest.raises(JournalContextError, match="context"):
            run_campaign(scenarios, base_options=other, mode="serial",
                         journal=path, resume=True)

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            run_campaign(small_scenarios(), mode="serial", resume=True)


class TestAdaptiveScheduling:
    def test_outcomes_stay_in_plan_order(self):
        scenarios = small_scenarios()
        plain = run_campaign(scenarios, base_options=FAST_OPTIONS,
                             mode="serial")
        adaptive = run_campaign(scenarios, base_options=FAST_OPTIONS,
                                mode="serial", schedule="adaptive",
                                history=list(plain))
        assert [o.scenario.name for o in adaptive] == \
            [s.name for s in scenarios]
        for a, b in zip(plain, adaptive):
            assert a.deterministic_summary() == b.deterministic_summary()

    def test_dispatch_order_is_recorded_and_largest_first(self):
        scenarios = small_scenarios()
        plain = run_campaign(scenarios, base_options=FAST_OPTIONS,
                             mode="serial")
        adaptive = run_campaign(scenarios, base_options=FAST_OPTIONS,
                                mode="serial", schedule="adaptive",
                                history=list(plain))
        record = adaptive.metadata["schedule"]
        assert record["policy"] == "adaptive"
        order = record["dispatch_order"]
        assert sorted(order) == sorted(s.name for s in scenarios)
        predicted = record["predicted_seconds"]
        # every scenario has (circuit, method) history -> all predicted,
        # and the dispatch order is non-increasing in predicted runtime
        values = [predicted[name] for name in order]
        assert all(v is not None for v in values)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_plan_schedule_puts_unknowns_first(self):
        scenarios = small_scenarios(methods=("benr", "er"), budgets=(1e-3,))
        history_run = run_campaign([scenarios[0]], base_options=FAST_OPTIONS,
                                   mode="serial")
        pending = list(enumerate(scenarios))
        order, predictions = plan_schedule(pending, list(history_run))
        # scenario 1 (er) has no (circuit, method) pair history but the
        # circuit is known -> nnz-based estimate; both are predicted here,
        # so make one truly unknown:
        foreign = Scenario.from_dict({**scenarios[1].to_dict(),
                                      "name": "foreign"})
        foreign.circuit = type(foreign.circuit)(
            "rc_ladder", {"num_segments": 5})
        order, predictions = plan_schedule(
            list(enumerate([scenarios[0], foreign])), list(history_run))
        assert predictions["foreign"] is None
        assert order[0] == 1  # the unknown dispatches first

    def test_runtime_model_prefers_pair_history(self):
        scenarios = small_scenarios()
        campaign = run_campaign(scenarios, base_options=FAST_OPTIONS,
                                mode="serial")
        model = RuntimeModel(campaign)
        for scenario in scenarios:
            # each (circuit, method) pair ran twice (two budgets); the
            # prediction must be exactly that pair's mean runtime
            pair_runs = [o.runtime_seconds for o in campaign
                         if o.scenario.method == scenario.method]
            expected = sum(pair_runs) / len(pair_runs)
            assert model.predict(scenario) == pytest.approx(expected)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            run_campaign(small_scenarios(), mode="serial", schedule="chaos")
