"""Campaign result store and aggregation.

Workers return one :class:`ScenarioOutcome` per scenario -- a compact,
picklable record of the run's Table-I counters, the circuit's structural
statistics, downsampled waveforms of the observed nodes and any failure
information.  :class:`CampaignResult` collects them and derives the
aggregate views: per-method comparison rows with speedups and maximum
error against a reference method, JSON persistence, and simple grouping
helpers the reporting layer renders from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.campaign.scenario import Scenario

__all__ = ["ScenarioOutcome", "CampaignResult", "DETERMINISTIC_SUMMARY_KEYS"]

#: summary keys that must be bit-identical between serial and parallel
#: executions of the same scenario (everything except wall-clock timing)
DETERMINISTIC_SUMMARY_KEYS = (
    "method", "#step", "#rejected", "#NRa", "#ma", "#LU",
    "peak_factor_nnz", "completed", "failure", "t_end_reached", "num_points",
)


@dataclass
class ScenarioOutcome:
    """What one scenario produced (success or not)."""

    scenario: Scenario
    #: "ok" | "failed" (simulation reported incomplete) | "error" | "timeout"
    status: str = "error"
    #: :meth:`SimulationResult.summary` counters (plus runtime)
    summary: Dict[str, object] = field(default_factory=dict)
    #: structural statistics of the assembled MNA (#N, #Dev, nnzC, nnzG)
    structure: Dict[str, int] = field(default_factory=dict)
    #: uniform sample grid the observed waveforms were resampled onto
    sample_times: List[float] = field(default_factory=list)
    #: node -> waveform samples on ``sample_times``
    samples: Dict[str, List[float]] = field(default_factory=dict)
    error: Optional[str] = None
    traceback: Optional[str] = None
    #: wall-clock seconds of the whole scenario (build + DC + transient)
    runtime_seconds: float = 0.0
    #: pid of the executing process
    worker: Optional[int] = None
    #: whether the worker reused a cached MNA assembly for the circuit
    cache_hit: bool = False
    #: whether the worker reused a cached DC operating point
    dc_cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def deterministic_summary(self) -> Dict[str, object]:
        """The summary restricted to scheduling-independent counters."""
        return {k: self.summary.get(k) for k in DETERMINISTIC_SUMMARY_KEYS}

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario.to_dict(),
            "status": self.status,
            "summary": dict(self.summary),
            "structure": dict(self.structure),
            "sample_times": list(self.sample_times),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "error": self.error,
            "traceback": self.traceback,
            "runtime_seconds": self.runtime_seconds,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
            "dc_cache_hit": self.dc_cache_hit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioOutcome":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            status=str(data.get("status", "error")),
            summary=dict(data.get("summary", {})),
            structure=dict(data.get("structure", {})),
            sample_times=list(data.get("sample_times", [])),
            samples={k: list(v) for k, v in data.get("samples", {}).items()},
            error=data.get("error"),
            traceback=data.get("traceback"),
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            worker=data.get("worker"),
            cache_hit=bool(data.get("cache_hit", False)),
            dc_cache_hit=bool(data.get("dc_cache_hit", False)),
        )


def _max_abs_error(outcome: ScenarioOutcome, reference: ScenarioOutcome) -> Optional[float]:
    """Maximum |signal - reference| over all shared observed nodes."""
    worst: Optional[float] = None
    for node, values in outcome.samples.items():
        ref_values = reference.samples.get(node)
        if ref_values is None or len(ref_values) != len(values):
            continue
        err = max(abs(a - b) for a, b in zip(values, ref_values)) if values else 0.0
        worst = err if worst is None else max(worst, err)
    return worst


class CampaignResult:
    """All outcomes of one campaign plus aggregate views."""

    def __init__(self, outcomes: Optional[Iterable[ScenarioOutcome]] = None,
                 metadata: Optional[Dict[str, object]] = None):
        self.outcomes: List[ScenarioOutcome] = list(outcomes or [])
        #: execution metadata (mode, workers, wall time, base options...)
        self.metadata: Dict[str, object] = dict(metadata or {})

    # -- collection ------------------------------------------------------------------

    def add(self, outcome: ScenarioOutcome) -> None:
        self.outcomes.append(outcome)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def outcome_for(self, name: str) -> ScenarioOutcome:
        for outcome in self.outcomes:
            if outcome.scenario.name == name:
                return outcome
        raise KeyError(f"no outcome for scenario {name!r}")

    @property
    def num_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failures(self) -> List[ScenarioOutcome]:
        return [o for o in self.outcomes if not o.ok]

    # -- aggregation -----------------------------------------------------------------

    def by_variant(self) -> Dict[str, List[ScenarioOutcome]]:
        """Group outcomes by circuit+options identity (method varies within)."""
        groups: Dict[str, List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            groups.setdefault(outcome.scenario.variant_key(), []).append(outcome)
        return groups

    def rows(self, reference_method: Optional[str] = None) -> List[Dict[str, object]]:
        """Flatten into one comparison row per scenario.

        With a ``reference_method``, scenarios gain ``SP`` (reference
        runtime divided by own runtime; >1 means faster than the
        reference) and ``max_err`` (maximum waveform deviation from the
        reference run of the same variant) columns, ``None`` where the
        reference is missing or failed -- the "NA" cells of Table I.
        """
        references: Dict[str, ScenarioOutcome] = {}
        if reference_method:
            key = reference_method.strip().lower()
            for variant, group in self.by_variant().items():
                for outcome in group:
                    if outcome.scenario.method.strip().lower() == key:
                        references[variant] = outcome
                        break
        rows = []
        for outcome in self.outcomes:
            scenario = outcome.scenario
            row: Dict[str, object] = {
                "scenario": scenario.name,
                "circuit": scenario.circuit.factory,
                "method": outcome.summary.get("method", scenario.method),
                "status": outcome.status,
                "#N": outcome.structure.get("#N"),
                "nnzC": outcome.structure.get("nnzC"),
                "nnzG": outcome.structure.get("nnzG"),
                "#step": outcome.summary.get("#step"),
                "#NRa": outcome.summary.get("#NRa"),
                "#ma": outcome.summary.get("#ma"),
                "#LU": outcome.summary.get("#LU"),
                "RT(s)": outcome.summary.get("RT(s)"),
                "peak_factor_nnz": outcome.summary.get("peak_factor_nnz"),
            }
            for tag, value in scenario.tags.items():
                row.setdefault(str(tag), value)
            if reference_method:
                reference = references.get(scenario.variant_key())
                sp = None
                err = None
                if reference is not None and reference.ok and outcome.ok:
                    ref_rt = reference.summary.get("RT(s)") or 0.0
                    own_rt = outcome.summary.get("RT(s)") or 0.0
                    if own_rt > 0:
                        sp = ref_rt / own_rt
                    if reference is not outcome:
                        err = _max_abs_error(outcome, reference)
                    else:
                        err = 0.0
                row["SP"] = sp
                row["max_err"] = err
            rows.append(row)
        return rows

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "metadata": dict(self.metadata),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        return cls(
            outcomes=[ScenarioOutcome.from_dict(o) for o in data.get("outcomes", [])],
            metadata=dict(data.get("metadata", {})),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignResult":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:
        return (
            f"CampaignResult(scenarios={len(self.outcomes)}, ok={self.num_ok}, "
            f"failed={len(self.outcomes) - self.num_ok})"
        )
