"""Adaptive scenario scheduling: predicted-runtime, largest-first.

A pool finishing a campaign is only as fast as its last worker; when the
biggest scenario is dispatched last, every other worker idles while it
runs (the classic makespan tail).  Dispatching the *predicted-longest*
scenarios first (LPT scheduling) trims that tail without changing any
outcome -- scenarios are independent, so order is pure policy.

Predictions come from outcomes that already exist -- resumed journal
entries, result-cache hits, or a prior :class:`CampaignResult` passed as
``history`` -- which carry both the measured ``runtime_seconds`` and the
circuit's structure stats:

1. a scenario whose ``(circuit, method)`` pair has recorded runs is
   predicted at their mean runtime;
2. a scenario whose circuit appeared (under any method) is predicted
   from the circuit's matrix size via the history's global
   seconds-per-nonzero rate;
3. a scenario with no usable history has no prediction and is dispatched
   *before* all predicted ones (unknown cost is treated as potentially
   large -- the conservative choice for the tail).

The dispatch order is deterministic (ties fall back to plan order) and
is recorded in the campaign metadata, so an adaptive run remains exactly
reproducible from its own report.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.scenario import Scenario
from repro.campaign.store import ScenarioOutcome

__all__ = ["RuntimeModel", "plan_schedule", "SCHEDULE_POLICIES"]

#: accepted ``run_campaign(schedule=...)`` values
SCHEDULE_POLICIES = ("plan", "adaptive")


def _structure_nnz(structure: Dict[str, object]) -> Optional[float]:
    nnz_c = structure.get("nnzC")
    nnz_g = structure.get("nnzG")
    if nnz_c is None and nnz_g is None:
        return None
    return float(nnz_c or 0) + float(nnz_g or 0)


class RuntimeModel:
    """Runtime predictor fitted from finished outcomes."""

    def __init__(self, outcomes: Iterable[ScenarioOutcome] = ()):
        #: (circuit cache key, method) -> (total seconds, count)
        self._pair_runtime: Dict[Tuple[str, str], Tuple[float, int]] = {}
        #: circuit cache key -> nnz(C) + nnz(G)
        self._circuit_nnz: Dict[str, float] = {}
        self._total_seconds = 0.0
        self._total_nnz = 0.0
        for outcome in outcomes:
            self.observe(outcome)

    def observe(self, outcome: ScenarioOutcome) -> None:
        if not outcome.ok or outcome.runtime_seconds <= 0.0:
            return
        circuit_key = outcome.scenario.circuit.cache_key()
        method = outcome.scenario.method.strip().lower()
        total, count = self._pair_runtime.get((circuit_key, method), (0.0, 0))
        self._pair_runtime[(circuit_key, method)] = (
            total + outcome.runtime_seconds, count + 1)
        nnz = _structure_nnz(outcome.structure)
        if nnz:
            self._circuit_nnz.setdefault(circuit_key, nnz)
            self._total_seconds += outcome.runtime_seconds
            self._total_nnz += nnz

    @property
    def seconds_per_nnz(self) -> Optional[float]:
        if self._total_nnz <= 0.0:
            return None
        return self._total_seconds / self._total_nnz

    def predict(self, scenario: Scenario) -> Optional[float]:
        """Predicted runtime in seconds, or None without usable history."""
        circuit_key = scenario.circuit.cache_key()
        method = scenario.method.strip().lower()
        pair = self._pair_runtime.get((circuit_key, method))
        if pair is not None:
            total, count = pair
            return total / count
        nnz = self._circuit_nnz.get(circuit_key)
        rate = self.seconds_per_nnz
        if nnz is not None and rate is not None:
            return nnz * rate
        return None


def plan_schedule(
    pending: Sequence[Tuple[int, Scenario]],
    history: Iterable[ScenarioOutcome] = (),
) -> Tuple[List[int], Dict[str, Optional[float]]]:
    """Order pending scenarios largest-predicted-first.

    ``pending`` is ``(plan index, scenario)`` pairs; the return value is
    the dispatch order (as plan indices) plus the per-scenario-name
    predictions that produced it (``None`` = no history, dispatched
    first).  With no usable history at all the plan order is preserved.
    """
    model = RuntimeModel(history)
    predictions: Dict[str, Optional[float]] = {}
    keyed = []
    for position, (index, scenario) in enumerate(pending):
        predicted = model.predict(scenario)
        predictions[scenario.name] = predicted
        # unknowns first (treated as +inf), then longest first; plan
        # order breaks ties so the schedule is deterministic
        sort_key = (0 if predicted is None else 1,
                    -(predicted or 0.0), position)
        keyed.append((sort_key, index))
    keyed.sort()
    return [index for _, index in keyed], predictions
