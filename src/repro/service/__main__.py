"""Service CLI: ``python -m repro.service <serve|worker|submit|status>``.

A laptop fleet is two shell commands::

    python -m repro.service serve  --data ./svc --port 8080
    python -m repro.service worker --data ./svc        # one per core

then submit work over HTTP from anywhere::

    python -m repro.service submit --url http://localhost:8080 \
        --circuit rc_ladder --params '{"num_segments": 40}' --method er --wait
    python -m repro.service status --url http://localhost:8080
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Dict, Optional


def _http_json(url: str, body: Optional[Dict[str, object]] = None,
               timeout: float = 30.0) -> Dict[str, object]:
    """One JSON request/response round trip (errors become SystemExit)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except ValueError:
            document = {"error": str(exc)}
        raise SystemExit(f"{url}: HTTP {exc.code}: "
                         f"{document.get('error', document)}")
    except urllib.error.URLError as exc:
        raise SystemExit(f"{url}: {exc.reason}")


# -- serve -----------------------------------------------------------------------------


def cmd_serve(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service serve",
        description="Run the HTTP front end (and optionally local workers).")
    parser.add_argument("--data", metavar="DIR", required=True,
                        help="service data directory (created if missing)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=0,
                        help="also spawn this many local queue workers")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)

    from repro.campaign.backends._spawn import (
        spawn_module_worker,
        terminate_workers,
    )
    from repro.service.server import ServiceServer

    server = ServiceServer(data_dir=args.data, host=args.host, port=args.port)
    server.httpd.RequestHandlerClass.verbose = args.verbose
    processes = [
        spawn_module_worker("repro.service.worker", ["--data", args.data])
        for _ in range(max(0, args.workers))
    ]
    print(f"repro.service listening on {server.url} (data: {args.data}, "
          f"{len(processes)} local workers)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        terminate_workers(processes)
        server.shutdown()
    return 0


# -- worker ----------------------------------------------------------------------------


def cmd_worker(argv) -> int:
    from repro.service.worker import main as worker_main

    return worker_main(argv)


# -- submit ----------------------------------------------------------------------------


def _wait_for_result(url: str, job_id: str, poll: float) -> Dict[str, object]:
    import time

    while True:
        request = urllib.request.Request(f"{url}/jobs/{job_id}/result")
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                if response.status == 200:
                    return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code != 202:
                raise SystemExit(f"job {job_id}: HTTP {exc.code}")
        time.sleep(poll)


def cmd_submit(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service submit",
        description="Submit a scenario (or a campaign file) over HTTP.")
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    parser.add_argument("--file", metavar="JSON", default=None,
                        help="campaign submission file: "
                             '{"scenarios": [...], "base_options"?, ...}')
    parser.add_argument("--circuit", default=None,
                        help="registered circuit factory name")
    parser.add_argument("--params", default="{}",
                        help="circuit factory parameters (JSON object)")
    parser.add_argument("--method", default="er")
    parser.add_argument("--name", default=None,
                        help="scenario name (default: circuit/method)")
    parser.add_argument("--options", default="{}",
                        help="scenario option overrides (JSON object)")
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--wait", action="store_true",
                        help="poll until the result is ready and print it")
    parser.add_argument("--poll", type=float, default=0.5)
    args = parser.parse_args(argv)

    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            body = json.load(handle)
        body.setdefault("priority", args.priority)
        document = _http_json(f"{args.url}/campaigns", body)
        print(json.dumps(document, indent=2))
        return 0

    if not args.circuit:
        parser.error("one of --file or --circuit is required")
    scenario = {
        "name": args.name or f"{args.circuit}/{args.method}",
        "circuit": {"factory": args.circuit,
                    "params": json.loads(args.params)},
        "method": args.method,
        "options": json.loads(args.options),
    }
    document = _http_json(f"{args.url}/scenarios",
                          {"scenario": scenario, "priority": args.priority})
    print(json.dumps(document, indent=2))
    if args.wait and "result" not in document:
        result = _wait_for_result(args.url, document["job_id"], args.poll)
        print(json.dumps(result, indent=2))
    return 0


# -- status ----------------------------------------------------------------------------


def cmd_status(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service status",
        description="Print the service /stats snapshot (and render a table).")
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    parser.add_argument("--json", action="store_true",
                        help="raw JSON instead of the rendered table")
    args = parser.parse_args(argv)

    stats = _http_json(f"{args.url}/stats")
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    from repro.reporting import render_service_stats

    print(render_service_stats(stats))
    return 0


COMMANDS = {
    "serve": cmd_serve,
    "worker": cmd_worker,
    "submit": cmd_submit,
    "status": cmd_status,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        print(f"\ncommands: {', '.join(sorted(COMMANDS))}")
        return 0 if argv else 2
    command = COMMANDS.get(argv[0])
    if command is None:
        print(f"unknown command {argv[0]!r}; "
              f"expected one of {', '.join(sorted(COMMANDS))}", file=sys.stderr)
        return 2
    return command(argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
