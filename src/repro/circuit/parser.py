"""SPICE-like text netlist parser.

Supports the subset of SPICE syntax needed by the examples and tests:

* element cards: ``R``, ``C``, ``L``, ``V``, ``I``, ``D``, ``M``,
  ``E`` (VCVS), ``G`` (VCCS);
* source waveforms: plain DC values, ``DC v``, ``PWL(t1 v1 t2 v2 ...)``,
  ``PULSE(v1 v2 td tr tf pw per)``, ``SIN(off ampl freq [td theta])``,
  ``EXP(v1 v2 td1 tau1 td2 tau2)``;
* ``.model name d|nmos|pmos (param=value ...)``;
* ``.ic v(node)=value``;
* ``.tran tstep tstop``;
* ``*`` comments, ``+`` continuation lines, ``.end``;
* SPICE magnitude suffixes (``f p n u m k meg g t``).

The parser is deliberately strict: unknown cards raise
:class:`NetlistSyntaxError` with the offending line number instead of
being silently ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.devices.diode import DiodeModel
from repro.circuit.devices.mosfet import MOSFETModel
from repro.circuit.sources import DC, EXP, PULSE, PWL, SIN, Waveform

__all__ = ["parse_netlist", "parse_value", "NetlistSyntaxError", "ParsedNetlist", "TranSpec"]


class NetlistSyntaxError(ValueError):
    """Raised when a netlist line cannot be parsed."""

    def __init__(self, message: str, line_no: Optional[int] = None, line: str = ""):
        loc = f" (line {line_no}: {line.strip()!r})" if line_no is not None else ""
        super().__init__(message + loc)
        self.line_no = line_no
        self.line = line


_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_VALUE_RE = re.compile(
    r"^\s*([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)\s*(meg|t|g|k|m|u|n|p|f)?[a-zA-Z]*\s*$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE numeric token such as ``1k``, ``2.2u``, ``10meg``, ``1e-9``."""
    match = _VALUE_RE.match(token.lower())
    if not match:
        raise ValueError(f"cannot parse numeric value {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES[suffix] if suffix else base


@dataclass
class TranSpec:
    """Parameters of a ``.tran`` card."""

    tstep: float
    tstop: float
    tstart: float = 0.0


@dataclass
class ParsedNetlist:
    """Result of parsing: the circuit plus analysis directives."""

    circuit: Circuit
    tran: Optional[TranSpec] = None
    options: Dict[str, float] = field(default_factory=dict)


def _join_continuations(text: str) -> List[Tuple[int, str]]:
    """Strip comments and merge ``+`` continuation lines, keeping line numbers."""
    logical: List[Tuple[int, str]] = []
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise NetlistSyntaxError("continuation line with nothing to continue", i, raw)
            prev_no, prev = logical[-1]
            logical[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            logical.append((i, stripped))
    return logical


_FUNC_RE = re.compile(r"^(pwl|pulse|sin|exp|dc)\s*\((.*)\)$", re.IGNORECASE | re.DOTALL)


def _parse_waveform(spec: str) -> Waveform:
    """Parse the waveform part of a V/I card."""
    spec = spec.strip()
    lowered = spec.lower()
    if lowered.startswith("dc") and "(" not in lowered:
        return DC(parse_value(spec.split(None, 1)[1]))
    match = _FUNC_RE.match(spec)
    if match:
        kind = match.group(1).lower()
        args = [parse_value(tok) for tok in match.group(2).replace(",", " ").split()]
        if kind == "dc":
            return DC(args[0])
        if kind == "pwl":
            if len(args) < 2 or len(args) % 2 != 0:
                raise ValueError("PWL needs an even number of time/value arguments")
            points = list(zip(args[0::2], args[1::2]))
            return PWL(points)
        if kind == "pulse":
            return PULSE(*args)
        if kind == "sin":
            return SIN(*args)
        if kind == "exp":
            return EXP(*args)
    # plain numeric value -> DC source
    return DC(parse_value(spec))


def _parse_params(tokens: List[str]) -> Dict[str, float]:
    """Parse ``key=value`` tokens into a dict."""
    params: Dict[str, float] = {}
    for tok in tokens:
        if "=" not in tok:
            raise ValueError(f"expected key=value parameter, got {tok!r}")
        key, val = tok.split("=", 1)
        params[key.strip().lower()] = parse_value(val)
    return params


_DIODE_PARAM_MAP = {
    "is": "isat",
    "n": "n",
    "tt": "tt",
    "cjo": "cj0",
    "cj0": "cj0",
    "vj": "vj",
    "m": "m",
    "fc": "fc",
}

_MOS_PARAM_MAP = {
    "level": "level",
    "vto": "vt0",
    "vt0": "vt0",
    "kp": "kp",
    "lambda": "lam",
    "gamma": "gamma",
    "phi": "phi",
    "cgso": "cgso",
    "cgdo": "cgdo",
    "cgbo": "cgbo",
    "cox": "cox",
    "cj": "cj",
    "pb": "pb",
    "mj": "mj",
    "fc": "fc",
    "nfactor": "nfactor",
}


def _build_model(name: str, kind: str, params: Dict[str, float]):
    kind = kind.lower()
    if kind == "d":
        kwargs = {}
        for key, value in params.items():
            if key not in _DIODE_PARAM_MAP:
                raise ValueError(f"unknown diode model parameter {key!r}")
            kwargs[_DIODE_PARAM_MAP[key]] = value
        return DiodeModel(name=name, **kwargs)
    if kind in ("nmos", "pmos"):
        kwargs = {"mos_type": kind}
        for key, value in params.items():
            if key not in _MOS_PARAM_MAP:
                raise ValueError(f"unknown MOSFET model parameter {key!r}")
            target = _MOS_PARAM_MAP[key]
            kwargs[target] = int(value) if target == "level" else value
        return MOSFETModel(name=name, **kwargs)
    raise ValueError(f"unknown model type {kind!r}")


_IC_RE = re.compile(r"v\(([^)]+)\)\s*=\s*(\S+)", re.IGNORECASE)


def parse_netlist(text: str, title: Optional[str] = None) -> ParsedNetlist:
    """Parse a SPICE-like netlist text into a :class:`ParsedNetlist`."""
    lines = _join_continuations(text)
    if not lines:
        raise NetlistSyntaxError("empty netlist")

    # SPICE treats the first line as the title when it does not look like a
    # card: directives start with '.', element cards start with a known
    # letter and carry at least four whitespace-separated fields.
    first_no, first = lines[0]
    looks_like_card = first.startswith(".") or (
        first[0].upper() in "RCLVIDMEG" and len(first.split()) >= 4
    )
    if title is None:
        if not looks_like_card:
            title = first
            lines = lines[1:]
        else:
            title = "untitled"
    if not lines:
        raise NetlistSyntaxError("netlist contains no cards", first_no, first)

    circuit = Circuit(title)
    result = ParsedNetlist(circuit=circuit)
    pending_devices: List[Tuple[int, str, List[str]]] = []

    for line_no, line in lines:
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == ".":
                directive = card.lower()
                if directive == ".end":
                    break
                if directive == ".model":
                    name = tokens[1]
                    remainder = line.split(None, 2)[2]
                    if "(" in remainder:
                        mtype, _, params_str = remainder.partition("(")
                        params_str = params_str.rsplit(")", 1)[0]
                    else:
                        parts = remainder.split(None, 1)
                        mtype, params_str = parts[0], parts[1] if len(parts) > 1 else ""
                    mtype = mtype.strip()
                    tokens_params = params_str.split()
                    params = _parse_params(tokens_params) if tokens_params else {}
                    circuit.add_model(_build_model(name, mtype, params))
                elif directive == ".tran":
                    tstep = parse_value(tokens[1])
                    tstop = parse_value(tokens[2])
                    tstart = parse_value(tokens[3]) if len(tokens) > 3 else 0.0
                    result.tran = TranSpec(tstep=tstep, tstop=tstop, tstart=tstart)
                elif directive == ".ic":
                    for node, value in _IC_RE.findall(line):
                        circuit.set_initial_condition(node, parse_value(value))
                elif directive == ".options":
                    result.options.update(_parse_params(tokens[1:]))
                else:
                    raise NetlistSyntaxError(f"unsupported directive {card!r}", line_no, line)
            elif kind == "R":
                circuit.add_resistor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "C":
                circuit.add_capacitor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "L":
                circuit.add_inductor(card, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "V":
                spec = line.split(None, 3)[3]
                circuit.add_vsource(card, tokens[1], tokens[2], _parse_waveform(spec))
            elif kind == "I":
                spec = line.split(None, 3)[3]
                circuit.add_isource(card, tokens[1], tokens[2], _parse_waveform(spec))
            elif kind == "E":
                circuit.add_vcvs(card, tokens[1], tokens[2], tokens[3], tokens[4],
                                 parse_value(tokens[5]))
            elif kind == "G":
                circuit.add_vccs(card, tokens[1], tokens[2], tokens[3], tokens[4],
                                 parse_value(tokens[5]))
            elif kind in ("D", "M"):
                # Devices reference .model cards which may appear later in the
                # file; defer their construction until all lines are read.
                pending_devices.append((line_no, line, tokens))
            else:
                raise NetlistSyntaxError(f"unknown card {card!r}", line_no, line)
        except NetlistSyntaxError:
            raise
        except (ValueError, IndexError, KeyError) as exc:
            raise NetlistSyntaxError(str(exc), line_no, line) from exc

    for line_no, line, tokens in pending_devices:
        card = tokens[0]
        kind = card[0].upper()
        try:
            if kind == "D":
                model = circuit.get_model(tokens[3]) if len(tokens) > 3 else None
                area = parse_value(tokens[4]) if len(tokens) > 4 else 1.0
                circuit.add_diode(card, tokens[1], tokens[2], model=model, area=area)
            else:  # MOSFET
                model = circuit.get_model(tokens[5])
                params = _parse_params(tokens[6:]) if len(tokens) > 6 else {}
                circuit.add_mosfet(
                    card, tokens[1], tokens[2], tokens[3], tokens[4], model=model,
                    w=params.get("w", 1e-6), l=params.get("l", 1e-7),
                )
        except (ValueError, IndexError, KeyError) as exc:
            raise NetlistSyntaxError(str(exc), line_no, line) from exc

    return result
