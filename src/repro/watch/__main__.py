"""CLI for the live fleet dashboard: ``python -m repro.watch``.

Modes
-----
* ``--once``           one poll, print the plain-text dashboard, exit
* ``--once --json``    one poll, print the machine-readable snapshot
* (default, live)      Textual TUI when textual is importable and stdout
                       is a terminal; otherwise a plain redraw loop
* ``--plain``          force the plain loop even if Textual is available

``--once`` / ``--json`` need no TTY and no third-party packages, which
is what makes the dashboard CI-testable.  With ``--alert-queue-depth``
/ ``--alert-heartbeat-age``, ``--once`` doubles as a health probe: it
exits 2 (one reason line on stderr) when a threshold is violated, so a
cron line or CI step can page on a backed-up queue or a silent worker.
Exit 1 still means "service unreachable".
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.watch.app import run_app, textual_available
from repro.watch.client import WatchClient
from repro.watch.render import render_snapshot

#: ANSI "clear screen, cursor home" used by the plain live loop
_CLEAR = "\x1b[2J\x1b[H"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.watch",
        description="Live operations dashboard for a repro.service fleet.")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="service front-end base URL "
                             "(default: %(default)s)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="poll interval in seconds (default: %(default)s)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request HTTP timeout (default: %(default)s)")
    parser.add_argument("--once", action="store_true",
                        help="poll once, print a snapshot, exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="with --once: print the snapshot as JSON")
    parser.add_argument("--plain", action="store_true",
                        help="force the plain-text loop (skip Textual)")
    parser.add_argument("--token", default=None,
                        help="bearer token for a service running with "
                             "--auth-token (default: $REPRO_SERVICE_TOKEN)")
    parser.add_argument("--alert-queue-depth", type=int, default=None,
                        metavar="N",
                        help="with --once: exit 2 if more than N jobs "
                             "are queued")
    parser.add_argument("--alert-heartbeat-age", type=float, default=None,
                        metavar="SECONDS",
                        help="with --once: exit 2 if any published worker "
                             "heartbeat is older than SECONDS")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.as_json and not args.once:
        build_parser().error("--json requires --once")
    has_alerts = args.alert_queue_depth is not None or \
        args.alert_heartbeat_age is not None
    if has_alerts and not args.once:
        build_parser().error("--alert-* thresholds require --once")
    token = args.token if args.token is not None \
        else os.environ.get("REPRO_SERVICE_TOKEN")
    client = WatchClient(args.url, timeout=args.timeout, token=token)

    if args.once:
        snap = client.poll()
        if args.as_json:
            print(json.dumps(snap.to_dict(), indent=2, sort_keys=True,
                             default=repr))
        else:
            sys.stdout.write(render_snapshot(snap))
        if not snap.healthy:
            return 1
        alerts = snap.alerts(max_queue_depth=args.alert_queue_depth,
                             max_heartbeat_age=args.alert_heartbeat_age)
        for line in alerts:
            print(f"ALERT: {line}", file=sys.stderr)
        return 2 if alerts else 0

    use_tui = (not args.plain and textual_available()
               and sys.stdout.isatty())
    if use_tui:
        run_app(client, interval=args.interval)
        return 0

    # plain live loop: redraw the same renderer on every poll
    try:
        while True:
            snap = client.poll()
            if sys.stdout.isatty():
                sys.stdout.write(_CLEAR)
            sys.stdout.write(render_snapshot(snap))
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
