"""Incremental Arnoldi process shared by all Krylov MEVP variants.

The three MEVP strategies (standard, invert, rational) only differ in the
operator whose Krylov space is built -- ``J = -C^{-1}G``,
``J^{-1} = -G^{-1}C`` or ``(I - gamma J)^{-1}`` -- and in the mapping from
the small Hessenberg matrix back to ``e^{hJ}``.  The orthogonalization
loop itself is identical, so it lives here.

The implementation keeps the basis in a pre-allocated array and exposes an
incremental :meth:`ArnoldiProcess.extend` so callers can interleave basis
growth with their convergence test (Algorithm 1, line 10).
Orthogonalization uses blocked classical Gram-Schmidt with one
re-orthogonalization pass (CGS2): the projections run as two BLAS-2
matrix-vector products against the whole basis instead of a Python loop
over basis vectors, and the second pass gives the same orthogonality
quality as modified Gram-Schmidt with re-orthogonalization -- the standard
robust choice for the mildly ill-conditioned bases that stiff circuit
Jacobians produce.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["ArnoldiBreakdown", "ArnoldiProcess"]


class ArnoldiBreakdown(Exception):
    """Signal that the Krylov space became invariant (happy breakdown).

    Not an error: the approximation is exact (to rounding) in the current
    subspace.  Callers catch this and stop extending the basis.
    """

    def __init__(self, dimension: int):
        super().__init__(f"Arnoldi breakdown at dimension {dimension}")
        self.dimension = dimension


class ArnoldiProcess:
    """Arnoldi iteration for an arbitrary linear operator.

    Parameters
    ----------
    apply_operator:
        Callable mapping a length-``n`` vector to the operator applied to
        it (e.g. ``lambda v: -lu_G.solve(C @ v)`` for the invert Krylov
        subspace).
    v0:
        Starting vector.  Its norm ``beta`` is recorded; the first basis
        vector is ``v0 / beta``.
    max_dim:
        Maximum subspace dimension (storage is allocated up front).
    reorthogonalize:
        Run a second Gram-Schmidt pass (default True).
    """

    #: relative tolerance below which ``h_{j+1,j}`` is treated as a breakdown
    BREAKDOWN_TOL = 1e-14

    def __init__(
        self,
        apply_operator: Callable[[np.ndarray], np.ndarray],
        v0: np.ndarray,
        max_dim: int = 100,
        reorthogonalize: bool = True,
    ):
        v0 = np.asarray(v0, dtype=float).ravel()
        self.n = v0.shape[0]
        if max_dim < 1:
            raise ValueError("max_dim must be at least 1")
        self.max_dim = int(min(max_dim, self.n))
        self._apply = apply_operator
        self._reorth = reorthogonalize

        self.beta = float(np.linalg.norm(v0))
        # Storage grows geometrically up to max_dim: most bases converge at
        # a few tens of dimensions, so eagerly zeroing an (n, max_dim + 1)
        # array per basis would dominate small builds.
        self._capacity = min(self.max_dim, 16)
        self.V = np.zeros((self.n, self._capacity + 1))
        self.H = np.zeros((self._capacity + 1, self._capacity))
        self.m = 0
        self.breakdown = False
        if self.beta == 0.0:
            # The zero vector spans the trivial subspace; flag immediate
            # breakdown so callers can short-circuit (e^{hJ} 0 = 0).
            self.breakdown = True
        else:
            self.V[:, 0] = v0 / self.beta

    # -- incremental construction ---------------------------------------------------

    def _grow(self) -> None:
        """Double the allocated subspace capacity (clipped to max_dim)."""
        new_capacity = min(self.max_dim, 2 * self._capacity)
        V = np.zeros((self.n, new_capacity + 1))
        H = np.zeros((new_capacity + 1, new_capacity))
        V[:, : self._capacity + 1] = self.V
        H[: self._capacity + 1, : self._capacity] = self.H
        self.V, self.H, self._capacity = V, H, new_capacity

    def extend(self) -> int:
        """Grow the subspace by one dimension; return the new dimension ``m``.

        Raises
        ------
        ArnoldiBreakdown
            If the new direction is (numerically) linearly dependent on the
            existing basis.  ``self.m`` is still incremented so the last
            column of ``H`` is valid.
        """
        if self.breakdown:
            raise ArnoldiBreakdown(self.m)
        if self.m >= self.max_dim:
            raise RuntimeError(
                f"Krylov subspace dimension limit {self.max_dim} reached without convergence"
            )
        if self.m >= self._capacity:
            self._grow()
        j = self.m
        w = np.asarray(self._apply(self.V[:, j]), dtype=float).ravel()
        if w.shape[0] != self.n:
            raise ValueError("operator returned a vector of the wrong length")
        norm_before = np.linalg.norm(w)

        # Blocked classical Gram-Schmidt (CGS2): project against the whole
        # basis with two matrix-vector products per pass.
        Vj = self.V[:, :j + 1]
        coeffs = Vj.T @ w
        w -= Vj @ coeffs
        self.H[:j + 1, j] += coeffs
        if self._reorth:
            correction = Vj.T @ w
            w -= Vj @ correction
            self.H[:j + 1, j] += correction

        h_next = float(np.linalg.norm(w))
        self.H[j + 1, j] = h_next
        self.m = j + 1
        if h_next <= self.BREAKDOWN_TOL * max(norm_before, 1.0):
            self.breakdown = True
            raise ArnoldiBreakdown(self.m)
        self.V[:, j + 1] = w / h_next
        return self.m

    # -- views -------------------------------------------------------------------------

    def basis(self, m: Optional[int] = None) -> np.ndarray:
        """Return the ``n x m`` orthonormal basis ``V_m``."""
        m = self.m if m is None else m
        return self.V[:, :m]

    def hessenberg(self, m: Optional[int] = None) -> np.ndarray:
        """Return the square upper-Hessenberg matrix ``H_m``."""
        m = self.m if m is None else m
        return self.H[:m, :m]

    def subdiagonal(self, m: Optional[int] = None) -> float:
        """Return ``h_{m+1,m}`` (zero after a breakdown)."""
        m = self.m if m is None else m
        if m == 0:
            return 0.0
        return float(self.H[m, m - 1])

    def next_basis_vector(self, m: Optional[int] = None) -> np.ndarray:
        """Return ``v_{m+1}`` (the residual direction used in Eq. 22)."""
        m = self.m if m is None else m
        return self.V[:, m]

    def orthogonality_defect(self) -> float:
        """Return ``||V_m^T V_m - I||_F`` -- a testing/diagnostic helper."""
        Vm = self.basis()
        gram = Vm.T @ Vm
        return float(np.linalg.norm(gram - np.eye(self.m)))
