"""Edge-case tests for waveform slopes and breakpoints.

These harden the PULSE slope fix of PR 2: the slope must classify times
against the exact breakpoint floats (not the modulo phase), stay
right-continuous at breakpoints down to one-ulp landings, and remain
bit-identical across each segment -- the contract the ER integrator's
analytic Eq. 13 excitation term is built on.
"""

import math

import numpy as np
import pytest

from repro.circuit.sources import DC, EXP, PULSE, PWL, SIN


def up(x):
    """One ulp above x."""
    return np.nextafter(x, math.inf)


def down(x):
    """One ulp below x."""
    return np.nextafter(x, -math.inf)


class TestPulseBreakpointLandings:
    """Slope right-continuity at one-ulp breakpoint landings."""

    @pytest.fixture()
    def pulse(self):
        return PULSE(0.0, 1.0, delay=0.1e-9, rise=20e-12, fall=30e-12,
                     width=0.4e-9, period=1e-9)

    def test_slope_is_right_continuous_at_every_breakpoint(self, pulse):
        t_end = 3e-9
        rising = (pulse.v2 - pulse.v1) / pulse.rise
        falling = (pulse.v1 - pulse.v2) / pulse.fall
        for bp in pulse.breakpoints(t_end):
            at = pulse.slope(bp)
            after = pulse.slope(up(bp))
            assert at == after, f"slope not right-continuous at {bp!r}"
            assert at in (0.0, rising, falling)

    def test_one_ulp_before_breakpoint_keeps_previous_segment_slope(self, pulse):
        rising = (pulse.v2 - pulse.v1) / pulse.rise
        rise_end = pulse.delay + pulse.rise
        assert pulse.slope(down(rise_end)) == rising
        assert pulse.slope(rise_end) == 0.0

    def test_slope_constant_and_bit_identical_inside_segments(self, pulse):
        rising = (pulse.v2 - pulse.v1) / pulse.rise
        t0 = pulse.delay
        for frac in (1e-6, 0.25, 0.5, 0.99):
            assert pulse.slope(t0 + frac * pulse.rise) == rising

    def test_value_continuous_across_breakpoints(self, pulse):
        for bp in pulse.breakpoints(3e-9):
            assert pulse.value(down(bp)) == pytest.approx(
                pulse.value(up(bp)), abs=1e-9)

    def test_late_period_landings_match_first_period(self, pulse):
        """Breakpoint floats of period k must classify like period 0."""
        for k in (1, 7, 23):
            base = pulse.delay + k * pulse.period
            rise_end = base + pulse.rise
            assert pulse.slope(base) == pulse.slope(pulse.delay)
            assert pulse.slope(rise_end) == pulse.slope(pulse.delay + pulse.rise)
            assert pulse.slope(down(rise_end)) == pulse.slope(
                down(pulse.delay + pulse.rise))


class TestDegeneratePulseSegments:
    def test_zero_width_plateau(self):
        """width=0: the rise boundary is immediately the fall start."""
        p = PULSE(0.0, 1.0, delay=0.0, rise=10e-12, fall=10e-12,
                  width=0.0, period=1e-9)
        rising = 1.0 / 10e-12
        falling = -1.0 / 10e-12
        assert p.slope(down(10e-12)) == rising
        # the boundary enters the (zero-width) plateau and the fall at
        # once; chronologically last entered segment wins: the fall
        assert p.slope(10e-12) == falling
        assert p.value(10e-12) == pytest.approx(1.0)

    def test_zero_off_time(self):
        """rise+width+fall == period: fall end coincides with period end."""
        p = PULSE(0.0, 1.0, delay=0.0, rise=0.25e-9, fall=0.25e-9,
                  width=0.5e-9, period=1e-9)
        rising = 1.0 / 0.25e-9
        # the fall-end/period-end boundary immediately re-enters the rise
        assert p.slope(1e-9) == rising
        assert p.value(up(1e-9)) == pytest.approx(0.0, abs=1e-6)

    def test_one_ulp_wide_edges_stay_finite_and_classified(self):
        """Extremely fast edges: slopes are huge but finite and exact."""
        rise = 1e-15
        p = PULSE(0.0, 1.0, delay=0.0, rise=rise, fall=rise,
                  width=0.4e-9, period=1e-9)
        assert p.slope(0.0) == 1.0 / rise
        assert math.isfinite(p.slope(down(rise)))
        assert p.slope(rise) == 0.0
        assert p.value(rise) == pytest.approx(1.0)


class TestPWLDegenerateSegments:
    def test_one_ulp_wide_segment(self):
        """Two points one ulp apart define a legal (huge-slope) segment."""
        t = 1e-10
        t2 = up(t)
        w = PWL([(0.0, 0.0), (t, 0.0), (t2, 1.0), (2e-10, 1.0)])
        assert w.value(t) == 0.0
        assert w.value(t2) == 1.0
        s = w.slope(t)
        assert math.isfinite(s) and s > 0.0
        # right-continuity: the slope at t2 belongs to the flat segment
        assert w.slope(t2) == 0.0

    def test_single_point_pwl_is_constant(self):
        w = PWL([(1e-10, 0.7)])
        assert w.value(0.0) == 0.7
        assert w.value(5e-10) == 0.7
        assert w.slope(0.0) == 0.0
        assert w.slope(2e-10) == 0.0
        # the knot may be reported as a (conservative) breakpoint -- that
        # only costs a step clip -- but the slope must be continuous there
        for bp in w.breakpoints(1e-9):
            assert w.slope(bp) == 0.0

    def test_slope_right_continuous_at_knots(self):
        w = PWL([(0.0, 0.0), (1e-10, 1.0), (3e-10, -1.0)])
        assert w.slope(1e-10) == (-1.0 - 1.0) / 2e-10
        assert w.slope(down(1e-10)) == 1.0 / 1e-10
        # beyond the last knot the waveform holds its value
        assert w.slope(3e-10) == 0.0


class TestIsPiecewiseLinearOnDegenerateWaveforms:
    def test_exactly_linear_waveforms_claim_it(self):
        assert DC(1.0).is_piecewise_linear
        assert PWL([(0.0, 1.0)]).is_piecewise_linear
        assert PULSE(0.0, 1.0, 0.0, 1e-15, 1e-15, 0.0, 1e-9).is_piecewise_linear

    def test_smooth_waveforms_do_not(self):
        assert not SIN(0.0, 1.0, 1e9).is_piecewise_linear
        assert not EXP(0.0, 1.0).is_piecewise_linear

    def test_pwl_claim_is_honest_on_degenerate_segments(self):
        """Where is_piecewise_linear is True, the slope must reproduce the
        value exactly along each segment -- including a zero-length-like
        (one ulp) segment."""
        t = 1e-10
        w = PWL([(0.0, 0.0), (t, 0.5), (up(t), 0.25), (2e-10, 0.25)])
        for a, b in zip(w.points, w.points[1:]):
            (t0, v0), (t1, v1) = a, b
            mid = t0 + 0.5 * (t1 - t0)
            if mid == t0 or mid >= t1:
                continue  # one-ulp segment has no interior float
            expected = v0 + (mid - t0) / (t1 - t0) * (v1 - v0)
            assert w.value(mid) == pytest.approx(expected, rel=1e-12)
            assert w.slope(mid) == (v1 - v0) / (t1 - t0)
