"""The differential verification matrix.

One :func:`run_matrix` call sweeps **every registered integrator** over
**>= 4 circuit families** times **>= 3 source types** through the
:mod:`repro.campaign` engine and layers four kinds of checks on top of
the raw runs:

1. **oracle checks** -- every oracle scenario's sampled waveform against
   its closed-form (or high-resolution self-) reference, within the
   per-method tolerance band;
2. **pairwise cross-checks** -- within each (circuit, source) variant,
   every method pair's waveforms against the *sum* of the two methods'
   bands (methods may differ from the truth by their own band, so two
   correct methods can differ by at most the sum);
3. **invariants** -- Eq. 13 slope consistency of every swept source,
   passivity/energy decay on the ringing RLC family, and the
   linearization cache's LU accounting identities (cache-on vs
   cache-off differential runs);
4. **golden checks** -- sampled waveforms against the committed golden
   trajectories, where goldens exist for the scenario's content hash.

The result is a :class:`VerifyReport`: a flat list of check rows that
:func:`repro.reporting.render_verify_report` renders and whose
``violations`` drive the CLI exit code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.benchcircuits.rlc_networks import rlc_line_energy
from repro.campaign.runner import run_campaign
from repro.campaign.scenario import CircuitSpec, Scenario
from repro.campaign.store import CampaignResult, ScenarioOutcome
from repro.core.options import SimOptions
from repro.core.simulator import TransientSimulator
from repro.verify.circuits import SOURCE_NAMES, family_observe_node, make_drive
from repro.verify.golden import DEFAULT_SAMPLE_POINTS, GoldenStore
from repro.verify.invariants import (
    InvariantViolation,
    check_adaptive_band,
    check_adaptive_reuse_accounting,
    check_energy_decay,
    check_lu_accounting,
    check_slope_consistency,
    check_symbolic_accounting,
)
from repro.verify.oracles import DEFAULT_METHOD_BANDS, Oracle, all_oracles

__all__ = [
    "CheckRow",
    "VerifyReport",
    "matrix_scenarios",
    "oracle_scenarios",
    "planned_golden_keys",
    "run_matrix",
    "MATRIX_METHODS",
    "MATRIX_FAMILIES",
    "DEFAULT_GOLDEN_ROOT",
    "DEFAULT_GOLDEN_TOLERANCE",
]

#: methods swept over every driven family (all handle the singular C of
#: voltage-source MNA rows); fe / expm-std require a regular C and run on
#: the ``regular_rc`` oracle scenarios instead -- together the matrix
#: covers every implementation in ``INTEGRATOR_REGISTRY``
MATRIX_METHODS: Tuple[str, ...] = ("benr", "trap", "gear2", "er", "er-c")

#: driven circuit families of the matrix: (smoke, full) size parameters,
#: per-family step bounds and the cross-check band scale.  The matrix
#: compares *sampled* trajectories, so ``h_max`` keeps every method's
#: time points dense enough that linear interpolation between them stays
#: far below the method bands (ER would otherwise take steps so large
#: that the sampling -- not the method -- dominates the comparison).
#: ``cross_scale`` widens the pairwise bands on the ringing RLC family,
#: where the damping differences of the low-order methods are amplified
#: by the oscillation (see the rlc oracle bands for the same effect
#: against the exact reference).
MATRIX_FAMILIES: Dict[str, Dict[str, object]] = {
    "rc_ladder": {
        "smoke": {"num_segments": 20},
        "full": {"num_segments": 80},
        "h_init": 2e-12, "h_max": 4e-12, "cross_scale": 1.0,
    },
    "rc_mesh": {
        "smoke": {"rows": 4, "cols": 4, "coupling_fraction": 0.5},
        "full": {"rows": 8, "cols": 8, "coupling_fraction": 0.5},
        # the mesh's slow corner makes the pulse edges relatively sharper
        # than on the oracle-sized circuits the bands were calibrated on
        "h_init": 2e-12, "h_max": 4e-12, "cross_scale": 1.5,
    },
    "coupled_lines": {
        "smoke": {"num_lines": 3, "segments_per_line": 4,
                  "long_range_fraction": 0.3},
        "full": {"num_lines": 6, "segments_per_line": 8,
                 "long_range_fraction": 0.3},
        "h_init": 2e-12, "h_max": 4e-12, "cross_scale": 1.0,
    },
    "rlc_line": {
        "smoke": {"num_segments": 6},
        "full": {"num_segments": 16},
        # ~30 points per ringing period (omega0 = 1e11 rad/s); BENR's
        # first-order damping error on the ringing dominates every pair
        # it appears in, hence the widest cross bands of the matrix
        "h_init": 1e-12, "h_max": 2e-12, "cross_scale": 3.0,
    },
}

#: default on-disk location of the committed goldens -- anchored to the
#: checkout (this file lives at src/repro/verify/matrix.py; the package
#: runs from source, per README) so the golden checks engage no matter
#: which directory the CLI is invoked from
DEFAULT_GOLDEN_ROOT = Path(__file__).resolve().parents[3] / "goldens"

#: default band of a regenerated golden: same-method trajectories are
#: deterministic up to BLAS/LU library jitter (and, through the LTE
#: accept/reject boundary, the jitter can shift a few grid points), so
#: the band sits well above cross-machine noise while staying two orders
#: below the tightest method band
DEFAULT_GOLDEN_TOLERANCE = 1e-5


@dataclass
class CheckRow:
    """One verification check (a row of the report table)."""

    #: "status" | "oracle" | "cross" | "invariant" | "golden"
    kind: str
    subject: str
    method: str
    #: measured worst deviation (None for pass/fail-only checks)
    max_err: Optional[float]
    #: bound the measurement was held against
    bound: Optional[float]
    status: str  # "ok" | "violation"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "subject": self.subject, "method": self.method,
            "max_err": self.max_err, "bound": self.bound,
            "status": self.status, "detail": self.detail,
        }


@dataclass
class VerifyReport:
    """Everything one verification matrix produced."""

    checks: List[CheckRow] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def violations(self) -> List[CheckRow]:
        return [c for c in self.checks if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """Per check kind: (total, violations)."""
        out: Dict[str, Tuple[int, int]] = {}
        for check in self.checks:
            total, bad = out.get(check.kind, (0, 0))
            out[check.kind] = (total + 1, bad + (0 if check.ok else 1))
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "metadata": dict(self.metadata),
            "checks": [c.to_dict() for c in self.checks],
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=repr) + "\n")
        return path


# -- scenario construction ---------------------------------------------------------------


def _horizon(smoke: bool) -> float:
    return 0.25e-9 if smoke else 0.5e-9


def matrix_scenarios(smoke: bool = False,
                     methods: Sequence[str] = MATRIX_METHODS) -> List[Scenario]:
    """The driven-family sweep: every method x family x source type."""
    t_stop = _horizon(smoke)
    size = "smoke" if smoke else "full"
    scenarios: List[Scenario] = []
    for family, config in MATRIX_FAMILIES.items():
        params = dict(config[size])
        observe = family_observe_node(family, params)
        for source in SOURCE_NAMES:
            for method in methods:
                spec = CircuitSpec(
                    factory="driven_family",
                    params={"family": family, "source": source,
                            "t_stop": t_stop, **params},
                    module="repro.verify.circuits",
                )
                scenarios.append(Scenario(
                    name=f"{family}/{source}/{method}",
                    circuit=spec,
                    method=method,
                    options={"t_stop": t_stop,
                             "h_init": config["h_init"],
                             "h_max": config["h_max"],
                             "store_states": False},
                    observe=[observe],
                    tags={"family": family, "source": source, "matrix": True},
                ))
    return scenarios


def oracle_scenarios(smoke: bool = False) -> List[Tuple[Scenario, Oracle]]:
    """One scenario per (oracle, applicable method)."""
    del smoke  # oracle circuits are tiny; one size fits both modes
    pairs: List[Tuple[Scenario, Oracle]] = []
    for oracle in all_oracles():
        methods = oracle.methods if oracle.methods is not None else MATRIX_METHODS
        for method in methods:
            scenario = Scenario(
                name=f"oracle:{oracle.name}/{method}",
                circuit=oracle.circuit,
                method=method,
                options={"t_stop": oracle.t_stop, "h_init": oracle.h_init,
                         "store_states": True, **oracle.options},
                observe=[oracle.node],
                tags={"oracle": oracle.name},
            )
            pairs.append((scenario, oracle))
    return pairs


def planned_golden_keys() -> List[str]:
    """Content hashes of every golden the current matrix plan produces.

    The golden store is written from the matrix campaign at both sizes
    (``--smoke`` on push CI, full nightly), so the live key set is the
    union of the two plans.  Anything else in ``goldens/`` is an orphan
    left behind by a re-parameterization (see ``--prune-orphans``).
    """
    keys = []
    for smoke in (True, False):
        keys.extend(s.content_hash() for s in matrix_scenarios(smoke=smoke))
    return sorted(set(keys))


# -- check passes ---------------------------------------------------------------------------


def _status_checks(campaign: CampaignResult) -> List[CheckRow]:
    rows = []
    for outcome in campaign:
        rows.append(CheckRow(
            kind="status",
            subject=outcome.scenario.name,
            method=outcome.scenario.method,
            max_err=None, bound=None,
            status="ok" if outcome.ok else "violation",
            detail="" if outcome.ok else f"{outcome.status}: {outcome.error}",
        ))
    return rows


def _oracle_checks(pairs: Sequence[Tuple[Scenario, Oracle]]) -> List[CheckRow]:
    """Run every oracle scenario in-process and check it at its own points.

    Oracle circuits are tiny, so these runs are cheap; running them
    directly (instead of through the sampled campaign outcomes) lets the
    reference be evaluated at the integrator's *accepted time points* --
    a sparse-stepping method like ER is exact at its points, and
    resampling through linear interpolation would bury that exactness
    under sampling error.
    """
    rows = []
    mna_cache: Dict[str, object] = {}
    for scenario, oracle in pairs:
        key = scenario.circuit.cache_key()
        mna = mna_cache.get(key)
        if mna is None:
            mna = scenario.circuit.build().build()
            mna_cache[key] = mna
        options = scenario.sim_options()
        simulator = TransientSimulator(mna, method=scenario.method,
                                       options=options)
        result = simulator.run()
        if not result.stats.completed:
            rows.append(CheckRow(
                kind="oracle",
                subject=f"{oracle.name} ({oracle.kind})",
                method=scenario.method,
                max_err=None, bound=oracle.tolerance(scenario.method),
                status="violation",
                detail=f"run failed: {result.stats.failure_reason}",
            ))
            continue
        times = result.time_array
        run = result.voltage(oracle.node)
        reference = oracle.reference(times)
        err = float(np.max(np.abs(run - reference)))
        band = oracle.tolerance(scenario.method)
        rows.append(CheckRow(
            kind="oracle",
            subject=f"{oracle.name} ({oracle.kind})",
            method=scenario.method,
            max_err=err, bound=band,
            status="ok" if err <= band else "violation",
            detail=f"node {oracle.node}",
        ))
    return rows


def _pairwise_checks(campaign: CampaignResult) -> List[CheckRow]:
    """Cross-check every method pair within each matrix variant."""
    rows = []
    groups: Dict[str, List[ScenarioOutcome]] = {}
    for outcome in campaign:
        if not outcome.scenario.tags.get("matrix"):
            continue
        groups.setdefault(outcome.scenario.variant_key(), []).append(outcome)
    for group in groups.values():
        ok_outcomes = [o for o in group if o.ok and o.samples]
        for i, a in enumerate(ok_outcomes):
            for b in ok_outcomes[i + 1:]:
                ma = a.scenario.method.strip().lower()
                mb = b.scenario.method.strip().lower()
                scale = float(MATRIX_FAMILIES.get(
                    str(a.scenario.tags.get("family", "")), {}
                ).get("cross_scale", 1.0))
                bound = scale * (DEFAULT_METHOD_BANDS[ma]
                                 + DEFAULT_METHOD_BANDS[mb])
                worst = 0.0
                for node, values in a.samples.items():
                    other = b.samples.get(node)
                    if other is None:
                        continue
                    worst = max(worst, float(np.max(np.abs(
                        np.asarray(values) - np.asarray(other)))))
                family = a.scenario.tags.get("family", a.scenario.circuit.factory)
                source = a.scenario.tags.get("source", "?")
                rows.append(CheckRow(
                    kind="cross",
                    subject=f"{family}/{source}",
                    method=f"{ma} vs {mb}",
                    max_err=worst, bound=bound,
                    status="ok" if worst <= bound else "violation",
                ))
    return rows


def _invariant_rows(violations: List[InvariantViolation], subject: str,
                    method: str, total_label: str) -> List[CheckRow]:
    if not violations:
        return [CheckRow(kind="invariant", subject=subject, method=method,
                         max_err=None, bound=None, status="ok",
                         detail=total_label)]
    return [CheckRow(kind="invariant", subject=subject, method=method,
                     max_err=None, bound=None, status="violation",
                     detail=v.describe()) for v in violations]


def _slope_invariants(smoke: bool) -> List[CheckRow]:
    t_stop = _horizon(smoke)
    rows: List[CheckRow] = []
    for source in SOURCE_NAMES + ("step",):
        waveform = make_drive(source, t_stop)
        violations = check_slope_consistency(waveform, t_stop, subject=source)
        rows.extend(_invariant_rows(
            violations, subject=f"source:{source}", method="-",
            total_label="Eq.13 slope consistency",
        ))
    return rows


def _energy_invariants(smoke: bool,
                       methods: Sequence[str] = ("benr", "trap", "er")) -> List[CheckRow]:
    """Passivity of the ringing RLC ladder after the pulse drive stops."""
    from repro.verify.circuits import driven_family

    t_stop = _horizon(smoke)
    config = MATRIX_FAMILIES["rlc_line"]
    params = dict(config["smoke" if smoke else "full"])
    circuit = driven_family(family="rlc_line", source="pulse",
                            t_stop=t_stop, **params)
    drive = make_drive("pulse", t_stop)
    quiescent_from = max(b for b in drive.breakpoints(t_stop)) if \
        drive.breakpoints(t_stop) else 0.0
    rows: List[CheckRow] = []
    mna = circuit.build()
    for method in methods:
        options = SimOptions(t_stop=t_stop, h_init=config["h_init"],
                             h_max=config["h_max"], store_states=True)
        result = TransientSimulator(mna, method=method, options=options).run()
        if not result.stats.completed:
            rows.append(CheckRow(
                kind="invariant", subject="energy-decay:rlc_line",
                method=method, max_err=None, bound=None, status="violation",
                detail=f"run failed: {result.stats.failure_reason}",
            ))
            continue
        energy = rlc_line_energy(result, int(params["num_segments"]))
        violations = check_energy_decay(
            result.time_array, energy, quiescent_from,
            subject=f"rlc_line/{method}", rel_slack=1e-4,
        )
        rows.extend(_invariant_rows(
            violations, subject="energy-decay:rlc_line", method=method,
            total_label="passivity after drive quiescence",
        ))
    return rows


def _lu_accounting_invariants(
        smoke: bool,
        cases: Sequence[Tuple[str, str, str]] = (
            ("rc_ladder", "ramp", "er"),
            ("rc_ladder", "ramp", "benr"),
            ("rlc_line", "pulse", "trap"),
        )) -> List[CheckRow]:
    """Cache-on vs cache-off differential runs on linear representatives."""
    from repro.verify.circuits import driven_family

    t_stop = _horizon(smoke)
    size = "smoke" if smoke else "full"
    rows: List[CheckRow] = []
    for family, source, method in cases:
        config = MATRIX_FAMILIES[family]
        params = dict(config[size])
        mna = driven_family(family=family, source=source,
                            t_stop=t_stop, **params).build()
        results = {}
        for cached in (True, False):
            options = SimOptions(t_stop=t_stop, h_init=config["h_init"],
                                 h_max=config["h_max"], store_states=True,
                                 cache_linearization=cached,
                                 reuse_segment_slope=cached)
            results[cached] = TransientSimulator(
                mna, method=method, options=options).run()
        subject = f"{family}/{source}"
        violations = check_lu_accounting(
            results[True], results[False], subject=f"{subject}/{method}",
        )
        rows.extend(_invariant_rows(
            violations, subject=f"lu-accounting:{subject}", method=method,
            total_label="#LU(off) == #LU(on) + #LUhit(on), bit-identical",
        ))
    return rows


def _symbolic_reuse_invariants(
        smoke: bool,
        cases: Sequence[Tuple[str, str, str]] = (
            ("rc_ladder", "ramp", "benr"),
            ("rlc_line", "pulse", "trap"),
        )) -> List[CheckRow]:
    """Symbolic-ordering reuse is exact work-preserving refactorization.

    Runs each case with the linearization cache *off* (so every step
    really factorizes) and ``reuse_symbolic`` on vs off.  The on-run must
    (a) reuse the pattern-matched ordering at least once, (b) perform
    exactly as many real factorizations as the off-run, (c) produce a
    bit-identical trajectory (tolerance 0 -- pre-permuting with COLAMD's
    own ordering is the same computation SuperLU performs), and (d)
    satisfy ``#LU == orderings + symbolic_reuses`` on both runs.
    """
    from repro.verify.circuits import driven_family

    t_stop = _horizon(smoke)
    size = "smoke" if smoke else "full"
    rows: List[CheckRow] = []
    for family, source, method in cases:
        config = MATRIX_FAMILIES[family]
        params = dict(config[size])
        mna = driven_family(family=family, source=source,
                            t_stop=t_stop, **params).build()
        results = {}
        for symbolic in (True, False):
            options = SimOptions(t_stop=t_stop, h_init=config["h_init"],
                                 h_max=config["h_max"], store_states=True,
                                 cache_linearization=False,
                                 reuse_segment_slope=False,
                                 reuse_symbolic=symbolic)
            results[symbolic] = TransientSimulator(
                mna, method=method, options=options).run()
        subject = f"{family}/{source}/{method}"
        on, off = results[True].stats.lu, results[False].stats.lu
        violations: List[InvariantViolation] = []
        if on.num_symbolic_reuses <= 0:
            violations.append(InvariantViolation(
                "symbolic-reuse", subject,
                f"expected num_symbolic_reuses > 0, got "
                f"{on.num_symbolic_reuses} over {on.num_factorizations} LUs",
            ))
        if on.num_factorizations != off.num_factorizations:
            violations.append(InvariantViolation(
                "symbolic-reuse", subject,
                f"#LU changed with symbolic reuse: {on.num_factorizations} "
                f"vs {off.num_factorizations}",
            ))
        try:
            diff = float(np.max(np.abs(
                results[True].state_array - results[False].state_array)))
        except (ValueError, RuntimeError):
            diff = float("inf")
        if diff != 0.0:
            violations.append(InvariantViolation(
                "symbolic-exactness", subject,
                f"trajectory difference {diff:.3e}; refactorization with a "
                f"reused ordering must be bit-identical",
            ))
        for tag, result in (("on", results[True]), ("off", results[False])):
            violations.extend(check_symbolic_accounting(
                result, subject=f"{subject}/symbolic-{tag}"))
        rows.extend(_invariant_rows(
            violations, subject=f"symbolic-reuse:{family}/{source}",
            method=method,
            total_label="#LU == orderings + symbolic reuses, bit-identical",
        ))
    return rows


def _adaptive_reuse_invariants(
        smoke: bool,
        cases: Sequence[Tuple[str, str, str]] = (
            ("rc_ladder", "ramp", "benr"),
            ("rc_mesh", "pulse", "trap"),
        )) -> List[CheckRow]:
    """Ladder + stale-reuse runs: counted savings, in-band trajectories.

    Runs each case with the cache-aware stepping knobs *off* (the exact
    baseline) and *on* (``step_ladder="geometric"`` plus a 5% stale
    cross-``h`` bypass).  The on-run must (a) satisfy the extended solve
    accounting identity ``#solves == (#LU - fallbacks) + reused +
    bypassed + stale``, (b) not pay more factorizations than the exact
    run -- the whole point of the mechanism -- and (c) stay inside the
    per-family differential band (twice the method's oracle band, scaled
    by the family's ``cross_scale``) of the exact trajectory.
    """
    from repro.verify.circuits import driven_family

    t_stop = _horizon(smoke)
    size = "smoke" if smoke else "full"
    rows: List[CheckRow] = []
    for family, source, method in cases:
        config = MATRIX_FAMILIES[family]
        params = dict(config[size])
        node = family_observe_node(family, params)
        mna = driven_family(family=family, source=source,
                            t_stop=t_stop, **params).build()
        results = {}
        for reuse in (False, True):
            options = SimOptions(
                t_stop=t_stop, h_init=config["h_init"],
                h_max=config["h_max"], store_states=True,
                step_ladder="geometric" if reuse else "off",
                h_bypass_tol=0.05 if reuse else 0.0,
            )
            results[reuse] = TransientSimulator(
                mna, method=method, options=options).run()
        subject = f"{family}/{source}/{method}"
        exact, reused = results[False], results[True]
        violations = list(check_adaptive_reuse_accounting(
            reused, subject=f"{subject}/ladder+stale"))
        if reused.stats.lu.num_factorizations > exact.stats.lu.num_factorizations:
            violations.append(InvariantViolation(
                "adaptive-reuse", subject,
                f"ladder+stale paid more LUs than the exact run: "
                f"{reused.stats.lu.num_factorizations} vs "
                f"{exact.stats.lu.num_factorizations}",
            ))
        band = float(config["cross_scale"]) * 2.0 * DEFAULT_METHOD_BANDS[method]
        violations.extend(check_adaptive_band(
            exact, reused, node, band, subject=subject))
        rows.extend(_invariant_rows(
            violations, subject=f"adaptive-reuse:{family}/{source}",
            method=method,
            total_label="ladder+stale: counted reuse, in-band trajectories",
        ))
    return rows


def _golden_checks(campaign: CampaignResult, store: GoldenStore,
                   regenerate: bool, allow_widen: bool,
                   tolerance: float) -> List[CheckRow]:
    rows: List[CheckRow] = []
    regenerated = 0
    for outcome in campaign:
        if not outcome.ok or not outcome.samples:
            continue
        scenario = outcome.scenario
        if regenerate:
            store.save(
                scenario, np.asarray(outcome.sample_times), outcome.samples,
                tolerance=tolerance,
                summary=outcome.deterministic_summary(),
                allow_widen=allow_widen,
            )
            regenerated += 1
            continue
        if not store.has(scenario):
            continue
        check = store.check(scenario, np.asarray(outcome.sample_times),
                            outcome.samples)
        rows.append(CheckRow(
            kind="golden",
            subject=scenario.name,
            method=scenario.method,
            max_err=check.max_error, bound=check.tolerance,
            status="ok" if check.ok else "violation",
            detail=f"key {check.key[:12]}",
        ))
    if regenerate:
        rows.append(CheckRow(
            kind="golden", subject=f"regenerated {regenerated} goldens",
            method="-", max_err=None, bound=tolerance, status="ok",
            detail=str(store.root),
        ))
    return rows


# -- the runner -----------------------------------------------------------------------------


def run_matrix(
    smoke: bool = False,
    mode: str = "auto",
    workers: Optional[int] = None,
    golden_root: Optional[Union[str, Path]] = DEFAULT_GOLDEN_ROOT,
    regenerate: bool = False,
    allow_widen: bool = False,
    golden_tolerance: float = DEFAULT_GOLDEN_TOLERANCE,
    timeout: Optional[float] = 300.0,
    sample_points: int = DEFAULT_SAMPLE_POINTS,
    backend=None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> VerifyReport:
    """Run the full differential verification matrix.

    Returns the :class:`VerifyReport`; ``report.ok`` is the gate.  With
    ``regenerate`` the golden store is rewritten from this run instead
    of checked (refusing tolerance widening unless ``allow_widen``).
    ``backend`` picks the campaign execution backend (name or
    :class:`~repro.campaign.backends.base.ExecutionBackend` instance;
    overrides ``mode``); ``journal``/``resume`` stream the matrix
    campaign's outcomes to a resumable JSONL journal.
    """
    scenarios = matrix_scenarios(smoke=smoke)
    oracle_pairs = oracle_scenarios(smoke=smoke)
    campaign = run_campaign(
        scenarios, mode=mode, workers=workers, timeout=timeout,
        sample_points=sample_points, backend=backend,
        journal=journal, resume=resume,
    )

    report = VerifyReport(metadata={
        "smoke": smoke,
        "num_scenarios": len(scenarios) + len(oracle_pairs),
        "num_matrix_scenarios": len(scenarios),
        "num_oracle_scenarios": len(oracle_pairs),
        "families": sorted(MATRIX_FAMILIES),
        "sources": list(SOURCE_NAMES),
        "methods": list(MATRIX_METHODS) + ["fe", "expm-std"],
        "campaign": dict(campaign.metadata),
    })
    report.checks.extend(_status_checks(campaign))
    report.checks.extend(_oracle_checks(oracle_pairs))
    report.checks.extend(_pairwise_checks(campaign))
    report.checks.extend(_slope_invariants(smoke))
    report.checks.extend(_energy_invariants(smoke))
    report.checks.extend(_lu_accounting_invariants(smoke))
    report.checks.extend(_symbolic_reuse_invariants(smoke))
    report.checks.extend(_adaptive_reuse_invariants(smoke))
    if golden_root is not None:
        store = GoldenStore(golden_root)
        report.checks.extend(_golden_checks(
            campaign, store, regenerate=regenerate, allow_widen=allow_widen,
            tolerance=golden_tolerance,
        ))
    return report
