"""Property-based round-trip tests for options and scenario hashing.

Requires ``hypothesis`` (skipped when absent -- the runtime stack stays
numpy/scipy-only).  Two families of properties:

* ``to_dict``/``from_dict`` of the option dataclasses round-trips exactly
  for *every* valid field combination, not just the defaults the
  example-based tests cover;
* the campaign scenario hash is a pure function of scenario *content* --
  invariant under dict insertion order and presentation metadata (name,
  tags), sensitive to everything else.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.campaign.scenario import (  # noqa: E402
    CircuitSpec,
    Scenario,
    scenario_hash,
)
from repro.core.options import DCOptions, NewtonOptions, SimOptions  # noqa: E402

COMMON = settings(max_examples=40,
                  suppress_health_check=[HealthCheck.too_slow], deadline=None)

#: strictly positive, finite, JSON-exact floats
positive_floats = st.floats(min_value=1e-15, max_value=1e3,
                            allow_nan=False, allow_infinity=False)


newton_options = st.builds(
    NewtonOptions,
    max_iterations=st.integers(min_value=1, max_value=500),
    abstol=positive_floats,
    reltol=positive_floats,
    residual_tol=positive_floats,
    damping=st.floats(min_value=1e-6, max_value=1.0,
                      allow_nan=False, exclude_min=False),
    apply_limiting=st.booleans(),
)

dc_options = st.builds(
    DCOptions,
    newton=newton_options,
    gmin_steps=st.lists(st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False), max_size=8),
    source_steps=st.lists(st.floats(min_value=0.01, max_value=1.0,
                                    allow_nan=False), max_size=8),
    use_initial_conditions=st.booleans(),
)


@st.composite
def sim_options(draw):
    t_start = draw(st.floats(min_value=0.0, max_value=1e-9, allow_nan=False))
    span = draw(st.floats(min_value=1e-12, max_value=1e-6, allow_nan=False))
    return SimOptions(
        t_start=t_start,
        t_stop=t_start + span,
        h_init=draw(st.one_of(st.none(), st.floats(min_value=1e-15,
                                                   max_value=1e-9,
                                                   allow_nan=False))),
        err_budget=draw(positive_floats),
        mevp_tol=draw(positive_floats),
        krylov_max_dim=draw(st.integers(min_value=2, max_value=300)),
        correction=draw(st.booleans()),
        gamma=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        alpha=draw(st.floats(min_value=1e-3, max_value=0.999, allow_nan=False)),
        beta=draw(st.floats(min_value=1.0, max_value=16.0, allow_nan=False)),
        newton=draw(newton_options),
        gshunt=draw(st.floats(min_value=0.0, max_value=1e-3, allow_nan=False)),
        max_factor_nnz=draw(st.one_of(st.none(),
                                      st.integers(min_value=1, max_value=10**9))),
        cache_linearization=draw(st.booleans()),
        bypass_tol=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        reuse_segment_slope=draw(st.booleans()),
        store_states=draw(st.booleans()),
        observe_nodes=draw(st.lists(st.text(min_size=1, max_size=8),
                                    max_size=4)),
        dc=draw(dc_options),
    )


class TestOptionsRoundTrip:
    @COMMON
    @given(options=newton_options)
    def test_newton_options(self, options):
        assert NewtonOptions.from_dict(options.to_dict()) == options

    @COMMON
    @given(options=dc_options)
    def test_dc_options(self, options):
        assert DCOptions.from_dict(options.to_dict()) == options

    @COMMON
    @given(options=sim_options())
    def test_sim_options(self, options):
        rebuilt = SimOptions.from_dict(options.to_dict())
        assert rebuilt == options
        # and the dict form itself is stable under a second round trip
        assert rebuilt.to_dict() == options.to_dict()


#: JSON-representable scenario parameter values
param_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.text(max_size=12),
    st.booleans(),
)
param_dicts = st.dictionaries(st.text(min_size=1, max_size=10),
                              param_values, max_size=6)


def shuffled_copy(data, rnd):
    items = list(data.items())
    rnd.shuffle(items)
    return dict(items)


class TestScenarioHashStability:
    @COMMON
    @given(params=param_dicts, options=param_dicts, rnd=st.randoms())
    def test_hash_ignores_dict_insertion_order(self, params, options, rnd):
        a = Scenario(name="a", circuit=CircuitSpec("rc_ladder", params=params),
                     method="er", options=options)
        b = Scenario(name="a",
                     circuit=CircuitSpec("rc_ladder",
                                         params=shuffled_copy(params, rnd)),
                     method="er", options=shuffled_copy(options, rnd))
        assert scenario_hash(a) == scenario_hash(b)

    @COMMON
    @given(params=param_dicts,
           name_a=st.text(max_size=8), name_b=st.text(max_size=8),
           tags=param_dicts)
    def test_hash_ignores_name_and_tags(self, params, name_a, name_b, tags):
        spec = CircuitSpec("rc_ladder", params=params)
        a = Scenario(name=name_a, circuit=spec, method="er")
        b = Scenario(name=name_b, circuit=spec, method="er", tags=tags)
        assert scenario_hash(a) == scenario_hash(b)

    @COMMON
    @given(params=param_dicts)
    def test_hash_depends_on_method_and_params(self, params):
        spec = CircuitSpec("rc_ladder", params=params)
        base = Scenario(name="x", circuit=spec, method="er")
        other_method = Scenario(name="x", circuit=spec, method="benr")
        assert scenario_hash(base) != scenario_hash(other_method)
        changed = dict(params)
        # tuple sentinel: the params strategy never generates tuples, so
        # this is guaranteed to change the content
        changed["__extra__"] = ("sentinel",)
        other_params = Scenario(
            name="x", circuit=CircuitSpec("rc_ladder", params=changed),
            method="er")
        assert scenario_hash(base) != scenario_hash(other_params)

    @COMMON
    @given(params=param_dicts, options=param_dicts)
    def test_hash_survives_dict_round_trip(self, params, options):
        """A scenario serialized and reloaded hashes identically -- the
        property the golden store depends on across processes/runs."""
        scenario = Scenario(name="x",
                            circuit=CircuitSpec("rc_ladder", params=params),
                            method="trap", options=options,
                            observe=["n1"], seed=7)
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert scenario_hash(rebuilt) == scenario_hash(scenario)
