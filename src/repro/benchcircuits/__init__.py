"""Benchmark circuit generators.

The paper evaluates on proprietary post-layout designs (ckt1-ckt8 and the
FreeCPU interconnect); this subpackage provides parameterizable synthetic
equivalents whose *structural* properties -- device counts, the ratio and
distribution of non-zeros in ``C`` versus ``G``, coupling density -- can be
dialed to match the regimes of the paper's Table I and Fig. 1 at sizes a
pure-Python simulator handles.  See DESIGN.md ("Substitutions") for the
mapping and the argument why the relative behaviour is preserved.
"""

from repro.benchcircuits.large_scale import (
    large_rc_mesh,
    large_rlc_mesh,
    pdn_multilayer,
)
from repro.benchcircuits.rc_networks import rc_ladder, rc_mesh
from repro.benchcircuits.rlc_networks import rlc_line, rlc_line_energy
from repro.benchcircuits.inverter_chain import inverter_chain, stiff_inverter_chain
from repro.benchcircuits.power_grid import power_grid
from repro.benchcircuits.coupled_interconnect import coupled_lines, driven_coupled_bus
from repro.benchcircuits.freecpu import freecpu_like_system, freecpu_like_circuit
from repro.benchcircuits.testcases import TestCase, make_ckt, TESTCASE_NAMES
from repro.benchcircuits.registry import (
    build_circuit,
    circuit_factory_names,
    factory_accepts_seed,
    get_circuit_factory,
    register_circuit_factory,
)

__all__ = [
    "register_circuit_factory",
    "get_circuit_factory",
    "circuit_factory_names",
    "factory_accepts_seed",
    "build_circuit",
    "rc_ladder",
    "rc_mesh",
    "large_rc_mesh",
    "large_rlc_mesh",
    "pdn_multilayer",
    "rlc_line",
    "rlc_line_energy",
    "inverter_chain",
    "stiff_inverter_chain",
    "power_grid",
    "coupled_lines",
    "driven_coupled_bus",
    "freecpu_like_system",
    "freecpu_like_circuit",
    "TestCase",
    "make_ckt",
    "TESTCASE_NAMES",
]
