"""Regression tests: ``run()`` must reuse the DC result cached by ``run_dc()``."""

import numpy as np

import repro.core.simulator as simulator_module
from repro.circuit.netlist import Circuit
from repro.circuit.sources import PWL
from repro.core.options import SimOptions
from repro.core.simulator import TransientSimulator


def rc_circuit():
    ckt = Circuit("rc")
    ckt.add_vsource("Vin", "in", "0", PWL([(0.0, 0.0), (0.1e-9, 1.0)]))
    ckt.add_resistor("R1", "in", "out", 1000.0)
    ckt.add_capacitor("C1", "out", "0", 1e-12)
    return ckt


def _counting_dc(monkeypatch):
    calls = []
    original = simulator_module.dc_operating_point

    def counted(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(simulator_module, "dc_operating_point", counted)
    return calls


def test_run_after_run_dc_solves_dc_once(monkeypatch):
    calls = _counting_dc(monkeypatch)
    sim = TransientSimulator(rc_circuit(), method="er", options=SimOptions(t_stop=1e-9))
    dc = sim.run_dc()
    assert len(calls) == 1
    result = sim.run()
    assert result.stats.completed
    assert len(calls) == 1, "run() recomputed the DC point despite the cache"
    assert sim.dc_result is dc


def test_run_without_cache_solves_dc_once_and_caches(monkeypatch):
    calls = _counting_dc(monkeypatch)
    sim = TransientSimulator(rc_circuit(), method="benr", options=SimOptions(t_stop=1e-9))
    sim.run()
    assert len(calls) == 1
    assert sim.dc_result is not None
    # a second transient run on the same simulator reuses the cached point too
    sim.run()
    assert len(calls) == 1


def test_explicit_x0_skips_dc_entirely(monkeypatch):
    calls = _counting_dc(monkeypatch)
    sim = TransientSimulator(rc_circuit(), method="er", options=SimOptions(t_stop=1e-9))
    result = sim.run(x0=np.zeros(sim.mna.n))
    assert result.stats.completed
    assert calls == []


def test_dc_lu_work_attributed_regardless_of_call_order():
    """#LU (Table I) must not depend on whether run_dc() warmed the cache."""
    sim_plain = TransientSimulator(rc_circuit(), method="benr",
                                   options=SimOptions(t_stop=1e-9))
    plain = sim_plain.run()

    sim_warm = TransientSimulator(rc_circuit(), method="benr",
                                  options=SimOptions(t_stop=1e-9))
    sim_warm.run_dc()
    warm = sim_warm.run()
    again = sim_warm.run()

    assert warm.stats.num_lu_factorizations == plain.stats.num_lu_factorizations
    assert again.stats.num_lu_factorizations == plain.stats.num_lu_factorizations
    assert warm.stats.peak_factor_nnz == plain.stats.peak_factor_nnz


def test_cached_and_uncached_runs_agree(monkeypatch):
    sim_cached = TransientSimulator(rc_circuit(), method="er", options=SimOptions(t_stop=1e-9))
    sim_cached.run_dc()
    cached = sim_cached.run()

    sim_plain = TransientSimulator(rc_circuit(), method="er", options=SimOptions(t_stop=1e-9))
    plain = sim_plain.run()

    assert cached.stats.num_steps == plain.stats.num_steps
    np.testing.assert_allclose(cached.voltage("out"), plain.voltage("out"))
