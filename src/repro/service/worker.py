"""Queue worker: lease jobs from a broker, simulate, ack the outcome.

Unlike the socket worker (which belongs to one coordinator for one
campaign), a queue worker belongs to the **broker**: it attaches to the
service data directory, drains whatever jobs appear -- from the HTTP
front end, from ``run_campaign(backend="queue")``, from another laptop
sharing the directory -- and survives across campaigns.  Run one per
core::

    python -m repro.service worker --data ./service-data

The worker is where two ROADMAP follow-ups close:

* **Worker-side result cache** -- before simulating, the worker consults
  the shared :class:`~repro.campaign.cache.ResultCache` under the data
  directory; a warm job is acked straight from disk (counted in the
  broker's ``worker_cache_hits`` counter, surfaced by ``/stats``) and a
  fresh ``ok`` outcome is stored back for every later request.
* **Cost-model persistence** -- every executed outcome appends its
  per-``(circuit, method)`` runtime record to the broker's shared
  history file, which ``schedule="adaptive"`` campaigns load for
  first-run LPT predictions.

While a scenario runs, a daemon thread extends the job's lease
(visibility timeout) so a long simulation is not mistaken for a crash;
a worker that actually dies simply stops extending, the lease expires,
and the broker redelivers the job to a sibling.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Optional

from repro import wire
from repro.campaign.cache import ResultCache, context_hash
from repro.campaign.execution import execute_scenario
from repro.campaign.scenario import Scenario
from repro.campaign.schedule import history_path_for
from repro.service.broker import Job, JobBroker
from repro.service import layout
from repro.telemetry import REGISTRY
from repro.telemetry import metrics as telemetry

__all__ = ["QueueWorker", "main"]

_TM_JOBS = telemetry.counter(
    "repro_worker_jobs_total",
    "Jobs this worker finished, by how the outcome was produced.",
    ("outcome",))
_TM_JOB_SECONDS = telemetry.histogram(
    "repro_worker_job_seconds",
    "Wall-clock seconds per executed job (lease to ack, cache hits excluded).")
_TM_IDLE_POLLS = telemetry.counter(
    "repro_worker_idle_polls_total",
    "Lease attempts that found the queue empty.")


class QueueWorker:
    """One lease-execute-ack loop around a :class:`JobBroker`."""

    def __init__(
        self,
        broker: JobBroker,
        cache: Optional[ResultCache] = None,
        worker_id: Optional[str] = None,
        lease_seconds: float = 60.0,
        poll_interval: float = 0.2,
        record_history: bool = True,
        publish_metrics: bool = True,
        publish_interval: float = 5.0,
    ):
        self.broker = broker
        self.cache = cache
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.record_history = record_history
        #: jobs this worker actually simulated / answered from cache
        self.num_executed = 0
        self.num_cache_hits = 0
        #: fleet telemetry: publish this process's metrics registry into
        #: the broker so the front end can aggregate it (/stats, /metrics)
        self.publish_metrics = publish_metrics
        self.publish_interval = float(publish_interval)
        self.started_at = time.time()
        self.current_job_id: Optional[str] = None
        self._last_publish = 0.0

    # -- one job -----------------------------------------------------------------------

    def process(self, job: Job) -> bool:
        """Execute (or cache-answer) one leased job and ack it.

        Returns whether the ack was accepted -- ``False`` means the
        lease expired under us and the redelivered execution wins.
        """
        try:
            context = wire.decode_job_context(job.context)
        except wire.WireError as exc:
            # a malformed context is a permanently bad job, not a crash
            self.broker.nack(job.id, self.worker_id,
                             f"invalid job context: {exc}", requeue=False)
            _TM_JOBS.labels("rejected").inc()
            return False
        base_options = context.base_options
        timeout = context.timeout
        sample_points = context.sample_points

        outcome = self._cached_outcome(job.payload, base_options, sample_points)
        if outcome is not None:
            self.num_cache_hits += 1
            self.broker.incr("worker_cache_hits")
            _TM_JOBS.labels("cache_hit").inc()
            acked = self.broker.ack(job.id, self.worker_id, outcome)
            self.publish(force=True)
            return acked

        self.current_job_id = job.id
        self.publish(force=True)
        stop_extending = self._keep_lease_alive(job.id)
        started = time.monotonic()
        try:
            outcome = execute_scenario(job.payload, base_options,
                                       timeout, sample_points)
        finally:
            stop_extending()
            self.current_job_id = None
        _TM_JOB_SECONDS.observe(time.monotonic() - started)
        _TM_JOBS.labels("executed").inc()
        self.num_executed += 1
        self.broker.incr("simulations")
        if self.cache is not None:
            self.cache.put(Scenario.from_dict(job.payload),
                           self._context_key(base_options, sample_points),
                           outcome)
        if self.record_history:
            # canonical history location: inside the shared cache
            # directory, where adaptive campaigns load it; broker-
            # adjacent fallback for cache-less fleets
            self.broker.record_runtime(
                outcome,
                history_path_for(self.cache.root)
                if self.cache is not None else None)
        acked = self.broker.ack(job.id, self.worker_id, outcome)
        if not acked:
            self.broker.incr("late_acks")
        self.publish(force=True)
        return acked

    # -- fleet telemetry ---------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """This worker's published document: identity, state, metrics.

        Encoded as a :class:`repro.wire.WorkerSnapshot` so every reader
        (front end, supervisor, dashboards) validates one schema instead
        of spelunking an ad-hoc dict.
        """
        return wire.encode(wire.WorkerSnapshot(
            worker_id=self.worker_id,
            pid=os.getpid(),
            busy=self.current_job_id is not None,
            current_job=self.current_job_id,
            started_at=self.started_at,
            num_executed=self.num_executed,
            num_cache_hits=self.num_cache_hits,
            # the whole process registry: worker loop metrics AND the
            # integrator/LU/reuse counters incremented by the simulations
            # this process ran -- this is how per-worker integrator
            # telemetry reaches the front end's /metrics
            metrics=REGISTRY.snapshot(),
        ))

    def publish(self, force: bool = False) -> None:
        """Publish the metrics snapshot into the broker (rate-limited)."""
        if not self.publish_metrics:
            return
        now = time.monotonic()
        if not force and now - self._last_publish < self.publish_interval:
            return
        self._last_publish = now
        self.broker.publish_worker_metrics(
            self.worker_id, self.metrics_snapshot())

    @staticmethod
    def _context_key(base_options, sample_points: int) -> str:
        return context_hash(base_options, sample_points)

    def _cached_outcome(self, payload, base_options, sample_points):
        if self.cache is None:
            return None
        scenario = Scenario.from_dict(payload)
        return self.cache.get(
            scenario, self._context_key(base_options, sample_points))

    def _keep_lease_alive(self, job_id: str):
        """Extend the lease on a timer while a simulation runs."""
        stop = threading.Event()
        interval = max(0.5, self.lease_seconds / 3.0)

        def _extend() -> None:
            while not stop.wait(interval):
                if not self.broker.extend(job_id, self.worker_id,
                                          self.lease_seconds):
                    return  # lease lost; the ack will be rejected anyway

        thread = threading.Thread(target=_extend, daemon=True)
        thread.start()

        def _stop() -> None:
            stop.set()

        return _stop

    # -- the loop ----------------------------------------------------------------------

    def run_once(self) -> bool:
        """Lease and process at most one job; returns whether one ran."""
        job = self.broker.lease(self.worker_id, self.lease_seconds)
        if job is None:
            return False
        self.process(job)
        return True

    def run(self, exit_when_idle: bool = False,
            max_idle: Optional[float] = None) -> int:
        """Drain the queue until stopped.

        ``exit_when_idle`` returns once nothing is queued *and* nothing
        is leased -- a leased job might still come back via lease expiry,
        so a fleet of spawned workers only disbands when the campaign is
        truly finished.  ``max_idle`` (seconds without work) is the
        belt-and-braces exit for detached fleets.  Returns the number of
        jobs this worker handled.
        """
        handled = 0
        idle_since = time.monotonic()
        self.publish(force=True)
        while True:
            if self.run_once():
                handled += 1
                idle_since = time.monotonic()
                continue
            _TM_IDLE_POLLS.inc()
            self.publish()  # idle heartbeat, rate-limited
            if exit_when_idle and self.broker.pending() == 0:
                self.publish(force=True)
                return handled
            if max_idle is not None and \
                    time.monotonic() - idle_since > max_idle:
                self.publish(force=True)
                return handled
            time.sleep(self.poll_interval)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service worker",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--data", metavar="DIR", default=None,
                        help="service data directory (broker + shared cache)")
    parser.add_argument("--broker", metavar="FILE", default=None,
                        help="broker database path (overrides --data layout)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="shared result-cache directory "
                             "(default: DATA/cache; empty string disables)")
    parser.add_argument("--lease", type=float, default=60.0,
                        help="visibility timeout granted per leased job")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="seconds between lease attempts when idle")
    parser.add_argument("--exit-when-idle", action="store_true",
                        help="exit once nothing is queued or leased")
    parser.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many idle seconds")
    parser.add_argument("--worker-id", default=None,
                        help="override the worker identity (host:pid)")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append runtime records to the shared "
                             "cost-model history")
    parser.add_argument("--no-publish", action="store_true",
                        help="do not publish telemetry snapshots into the "
                             "broker (/stats and /metrics lose this worker)")
    args = parser.parse_args(argv)

    if args.data is None and args.broker is None:
        parser.error("one of --data or --broker is required")
    broker = JobBroker(args.broker) if args.broker else \
        layout.open_broker(args.data)
    cache: Optional[ResultCache] = None
    if args.cache:
        cache = ResultCache(args.cache)
    elif args.cache is None and args.data is not None:
        cache = layout.open_cache(args.data)

    worker = QueueWorker(broker, cache=cache, worker_id=args.worker_id,
                         lease_seconds=args.lease, poll_interval=args.poll,
                         record_history=not args.no_history,
                         publish_metrics=not args.no_publish)
    print(f"worker {worker.worker_id} attached to {broker.path}",
          file=sys.stderr)
    try:
        handled = worker.run(exit_when_idle=args.exit_when_idle,
                             max_idle=args.max_idle)
    except KeyboardInterrupt:
        return 0
    print(f"worker {worker.worker_id} idle, exiting "
          f"({handled} jobs handled)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
