"""Setup shim for legacy editable installs (``pip install -e .``).

The environment used for development has no ``wheel`` package, so PEP 660
editable installs cannot build; this shim lets ``setup.py develop`` based
editable installs work.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
