"""Broker retention: ``JobBroker.gc`` and ``python -m repro.service gc``.

Retention must only ever touch terminal jobs (done/failed) and stale
worker-metrics rows; queued and leased work is sacred.  The CLI wraps
the same method with human age suffixes (``7d``) and a ``--dry-run``
that must not delete anything.
"""

import json
import time

import pytest

from repro.service.broker import JobBroker


def make_broker(tmp_path, **kwargs):
    return JobBroker(tmp_path / "broker.sqlite", **kwargs)


def finish_job(broker, job_id, when=None, status="ok"):
    """Drive one job to done and optionally backdate its finish time."""
    job = broker.lease("w1", lease_seconds=60.0)
    assert job is not None
    broker.ack(job.id, "w1", {"status": status, "scenario": {}})
    if when is not None:
        with broker._conn() as conn:
            conn.execute("UPDATE jobs SET finished_at=? WHERE id=?",
                         (when, job.id))
    return job.id


class TestBrokerGc:
    def test_age_retention_spares_young_and_active_jobs(self, tmp_path):
        broker = make_broker(tmp_path)
        old = broker.enqueue({"name": "old"}, job_id="old").id
        finish_job(broker, old, when=time.time() - 3600)
        young = broker.enqueue({"name": "young"}, job_id="young").id
        finish_job(broker, young)
        broker.enqueue({"name": "queued"}, job_id="queued")

        report = broker.gc(max_age=60.0)
        assert report["deleted_by_age"] == 1
        assert report["deleted_jobs"] == 1
        assert broker.fetch(["old"]) == {}
        assert broker.fetch(["young"])["young"].status == "done"
        assert broker.depth()["queued"] == 1
        assert broker.counters().get("gc_deleted_jobs") == 1

    def test_keep_retention_keeps_newest_terminal_jobs(self, tmp_path):
        broker = make_broker(tmp_path)
        now = time.time()
        for i in range(5):
            job_id = broker.enqueue({"name": f"j{i}"}, job_id=f"j{i}").id
            finish_job(broker, job_id, when=now - (5 - i))
        report = broker.gc(keep=2)
        assert report["deleted_by_count"] == 3
        assert report["remaining_jobs"] == 2
        remaining = broker.fetch([f"j{i}" for i in range(5)])
        assert sorted(remaining) == ["j3", "j4"]

    def test_dry_run_reports_without_deleting(self, tmp_path):
        broker = make_broker(tmp_path)
        job_id = broker.enqueue({"name": "x"}, job_id="x").id
        finish_job(broker, job_id, when=time.time() - 3600)
        report = broker.gc(max_age=60.0, dry_run=True)
        assert report["dry_run"] is True
        assert report["deleted_by_age"] == 1
        assert report["vacuumed"] is False
        assert broker.fetch(["x"])["x"].status == "done"
        assert "gc_deleted_jobs" not in broker.counters()

    def test_stale_worker_metrics_rows_are_pruned(self, tmp_path):
        broker = make_broker(tmp_path)
        broker.publish_worker_metrics("fresh", {"busy": False})
        broker.publish_worker_metrics("stale", {"busy": False})
        with broker._conn() as conn:
            conn.execute(
                "UPDATE worker_metrics SET updated_at=? WHERE worker_id=?",
                (time.time() - 7200, "stale"))
        report = broker.gc(worker_metrics_max_age=3600.0)
        assert report["deleted_worker_snapshots"] == 1
        assert list(broker.worker_metrics(max_age=None)) == ["fresh"]

    def test_vacuum_reports_sizes(self, tmp_path):
        broker = make_broker(tmp_path)
        for i in range(20):
            job_id = broker.enqueue({"name": f"v{i}", "blob": "x" * 4096},
                                    job_id=f"v{i}").id
            finish_job(broker, job_id, when=time.time() - 3600)
        report = broker.gc(max_age=60.0, vacuum=True)
        assert report["vacuumed"] is True
        assert report["bytes_before"] >= report["bytes_after"] > 0


class TestGcCli:
    def run_gc(self, argv):
        from repro.service.__main__ import cmd_gc
        return cmd_gc(argv)

    def test_cli_age_suffixes_and_json_report(self, tmp_path, capsys):
        broker = make_broker(tmp_path)
        job_id = broker.enqueue({"name": "c"}, job_id="c").id
        finish_job(broker, job_id, when=time.time() - 2 * 86400)
        rc = self.run_gc(["--broker", str(broker.path),
                          "--max-age", "1d", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["deleted_by_age"] == 1
        assert broker.fetch(["c"]) == {}

    def test_cli_requires_some_retention_policy(self, tmp_path):
        broker = make_broker(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            self.run_gc(["--broker", str(broker.path)])
        assert excinfo.value.code != 0

    def test_cli_dry_run_needs_no_policy_and_deletes_nothing(
            self, tmp_path, capsys):
        broker = make_broker(tmp_path)
        job_id = broker.enqueue({"name": "d"}, job_id="d").id
        finish_job(broker, job_id, when=time.time() - 3600)
        rc = self.run_gc(["--broker", str(broker.path), "--max-age", "1m",
                          "--dry-run", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True
        assert broker.fetch(["d"])["d"].status == "done"

    def test_parse_age(self):
        from repro.service.__main__ import _parse_age

        assert _parse_age("90") == 90.0
        assert _parse_age("30s") == 30.0
        assert _parse_age("5m") == 300.0
        assert _parse_age("2h") == 7200.0
        assert _parse_age("7d") == 7 * 86400.0
        with pytest.raises(ValueError):
            _parse_age("nope")
