"""Geometric step-size ladder for cache-aware adaptive stepping.

The implicit methods bake the step size into their factored Jacobian
``a C/h + b G``, so every ``h`` the controller invents costs one LU.  A
continuous asymptotic controller invents a *new* ``h`` on almost every
step -- the factor ``safety * err**-p`` practically never lands on a value
seen before -- which is why adaptive BENR/TR runs pay near-worst-case LU
counts even with the linearization cache in place.

:class:`GeometricLadder` fixes this by quantizing proposed step sizes onto
the grid ``h_ref * ratio**k``.  The controller keeps making its continuous
proposals; the ladder rounds each one *down* to the nearest rung and caps
climbing at one rung per accepted step.  Rounding down never loosens the
LTE bound the controller just certified, and the one-rung climb cap means
a run visits only ``O(log(h_max / h_init))`` distinct step sizes -- each
of which the :class:`~repro.core.workspace.LinearizationCache` LRU keeps
factored, so oscillating controllers (grow, reject, shrink, grow again)
rehit instead of refactorizing.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["GeometricLadder"]

#: relative slack when deciding whether a value sits on a rung; covers the
#: float noise of ``h_ref * ratio**k`` round-trips without ever merging two
#: adjacent rungs (ratios are > 1 by construction)
_REL_EPS = 1e-9


class GeometricLadder:
    """Quantize step-size proposals onto the grid ``h_ref * ratio**k``.

    The ladder is anchored at the run's initial step (``k = 0``) and spans
    the rungs that fall inside ``[h_min, h_max]``.  It tracks the last rung
    an accepted step actually used (the *active* rung) so the run loop can
    restore it after a breakpoint-shortened step and so climbs stay capped
    at one rung per step.
    """

    def __init__(self, h_ref: float, ratio: float, h_min: float, h_max: float):
        if h_ref <= 0.0:
            raise ValueError("ladder h_ref must be positive")
        if ratio <= 1.0:
            raise ValueError("ladder ratio must be greater than 1")
        self.h_ref = float(h_ref)
        self.ratio = float(ratio)
        self.h_min = float(h_min)
        self.h_max = float(h_max)
        self._log_ratio = math.log(self.ratio)
        #: index of the rung the last on-rung accepted step used
        self._active: Optional[int] = None
        # usable rung index window inside [h_min, h_max]; the anchor rung 0
        # always qualifies because run() resolves h_init into that interval
        self._k_hi = self._floor_index(self.h_max)
        k_lo = self._floor_index(self.h_min)
        if self.rung_value(k_lo) < self.h_min * (1.0 - _REL_EPS):
            k_lo += 1
        self._k_lo = min(k_lo, 0)

    # -- grid arithmetic ---------------------------------------------------------------

    def rung_value(self, k: int) -> float:
        """Step size of rung ``k`` (rung 0 is the anchor ``h_ref``)."""
        return self.h_ref * self.ratio ** k

    def _floor_index(self, h: float) -> int:
        """Largest ``k`` with ``rung_value(k) <= h`` (up to float slack)."""
        k = math.floor(math.log(h / self.h_ref) / self._log_ratio + _REL_EPS)
        while self.rung_value(k + 1) <= h * (1.0 + _REL_EPS):
            k += 1
        while self.rung_value(k) > h * (1.0 + _REL_EPS):
            k -= 1
        return k

    def rung_of(self, h: float) -> Optional[int]:
        """The rung index ``h`` sits on, or None when it is off-grid."""
        if h <= 0.0:
            return None
        k = round(math.log(h / self.h_ref) / self._log_ratio)
        if abs(self.rung_value(k) - h) <= _REL_EPS * h:
            return k
        return None

    # -- controller hooks --------------------------------------------------------------

    @property
    def active_rung(self) -> Optional[int]:
        return self._active

    @property
    def active_value(self) -> Optional[float]:
        """Step size of the active rung, or None before any on-rung step."""
        return None if self._active is None else self.rung_value(self._active)

    def quantize(self, h_proposed: float) -> float:
        """Round a proposal down onto the grid, climbing at most one rung.

        Rounding down keeps the controller's accuracy certificate valid;
        the climb cap keeps the set of visited rungs (and therefore the
        set of factorized Jacobians) small and monotone between events.
        """
        if h_proposed <= 0.0:
            return h_proposed
        k = self._floor_index(min(h_proposed, self.h_max))
        if self._active is not None:
            k = min(k, self._active + 1)
        k = max(self._k_lo, min(k, self._k_hi))
        return self.rung_value(k)

    def snap_retry(self, h_try: float) -> float:
        """Round a rejection-shrunk retry down onto the grid.

        Returns ``h_try`` unchanged when no rung fits below it inside the
        ladder window, so the caller's ``h_min`` / give-up guards behave
        exactly as without the ladder.
        """
        if h_try <= 0.0:
            return h_try
        k = self._floor_index(h_try)
        if k < self._k_lo or k > self._k_hi:
            return h_try
        return self.rung_value(k)

    def observe(self, h_used: float) -> Optional[int]:
        """Record an accepted step; returns its rung when it was on-grid.

        Off-grid steps (breakpoint landings, ``h_min`` emergencies) leave
        the active rung untouched -- that is what lets the run loop resume
        the pre-breakpoint step size instead of compounding from the
        truncated one.
        """
        rung = self.rung_of(h_used)
        if rung is not None and self._k_lo <= rung <= self._k_hi:
            self._active = rung
            return rung
        return None
