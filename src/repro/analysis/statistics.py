"""Cross-method run statistics (the Table I machinery).

:func:`compare_runs` lines up several :class:`SimulationResult` objects for
the same circuit and produces the per-method columns of the paper's
Table I -- step counts, average Newton iterations, average Krylov
dimension, runtime and the speedup over a designated baseline (BENR in the
paper).  A failed baseline (the "Out of Memory" rows) yields ``NA``
speedups exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.results import SimulationResult

__all__ = ["MethodComparison", "compare_runs"]


@dataclass
class MethodComparison:
    """One circuit's worth of per-method statistics."""

    circuit_name: str
    structure: Dict[str, int] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)

    def row_for(self, method: str) -> Dict[str, object]:
        for row in self.rows:
            if row["method"] == method:
                return row
        raise KeyError(f"no row for method {method!r}")

    def as_dicts(self) -> List[Dict[str, object]]:
        merged = []
        for row in self.rows:
            merged.append({"circuit": self.circuit_name, **self.structure, **row})
        return merged


def _speedup(baseline: Optional[SimulationResult], other: SimulationResult):
    """Speedup of ``other`` over ``baseline`` -- ``None`` means NA (baseline failed)."""
    if baseline is None or not baseline.stats.completed:
        return None
    if not other.stats.completed or other.stats.runtime_seconds <= 0:
        return None
    return baseline.stats.runtime_seconds / other.stats.runtime_seconds


def compare_runs(
    circuit_name: str,
    results: Sequence[SimulationResult],
    baseline_method: str = "BENR",
    structure: Optional[Dict[str, int]] = None,
) -> MethodComparison:
    """Assemble Table-I style rows from a set of runs on one circuit."""
    baseline = None
    for result in results:
        if result.method == baseline_method:
            baseline = result
            break

    comparison = MethodComparison(circuit_name=circuit_name, structure=dict(structure or {}))
    for result in results:
        stats = result.stats
        row: Dict[str, object] = {
            "method": result.method,
            "#step": stats.num_steps,
            "#NRa": round(stats.average_newton_iterations, 2),
            "#ma": round(stats.average_krylov_dimension, 2),
            "#LU": stats.num_lu_factorizations,
            "RT(s)": round(stats.runtime_seconds, 4),
            "peak_factor_nnz": stats.peak_factor_nnz,
            "completed": stats.completed,
            "failure": stats.failure_reason,
        }
        if result.method == baseline_method:
            row["SP"] = 1.0 if stats.completed else None
        else:
            row["SP"] = _speedup(baseline, result)
        comparison.rows.append(row)
    return comparison
