"""Helper module for test_campaign: a user circuit factory registered at
import time, referenced by scenarios via ``CircuitSpec(module=...)``."""

from repro.benchcircuits import register_circuit_factory
from repro.benchcircuits.rc_networks import rc_mesh


@register_circuit_factory("user_random_mesh")
def user_random_mesh(rows: int = 4, cols: int = 4, seed=0):
    return rc_mesh(rows, cols, coupling_fraction=0.8, seed=seed,
                   name="user_random_mesh")
