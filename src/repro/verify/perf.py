"""Perf-trajectory tracking: the steps/sec regression gate.

``benchmarks/bench_hotpath.py`` emits one ``BENCH_hotpath.json`` per run;
this module appends each run's cached-mode steps/sec rates to an
append-only JSONL history (``benchmarks/history/hotpath_history.jsonl``)
and gates new runs against the **median** of the tracked history: a run
whose rate falls more than ``threshold`` (default 20%) below the median
of the same (benchmark mode, case, method) series fails.

The median -- not the best or the latest -- is the anchor so that one
lucky run cannot ratchet the bar out of reach and one slow run cannot
lower it.  Histories are machine-local by construction (steps/sec is not
comparable across hosts), which is why the gate only engages once
``min_history`` runs of the same mode exist in the file.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ADAPTIVE_HISTORY_PATH",
    "DEFAULT_HISTORY_PATH",
    "FIG1_HISTORY_PATH",
    "PerfRegression",
    "extract_rates",
    "load_history",
    "record_entry",
    "record_run",
    "tracked_medians",
    "check_perf_regression",
    "run_gate",
]

#: anchored to the checkout (this file lives at src/repro/verify/perf.py;
#: the package runs from source, per README), not the CWD -- every
#: documented entry point (bench_hotpath --history, --perf-check) then
#: appends to the *same* per-checkout history wherever it is invoked
DEFAULT_HISTORY_PATH = (Path(__file__).resolve().parents[3]
                        / "benchmarks" / "history" / "hotpath_history.jsonl")

#: sibling history for the Fig.-1 nnz sweep (fill-in ratios, not rates --
#: it shares the JSONL entry shape so load_history/tracked_medians apply)
FIG1_HISTORY_PATH = (Path(__file__).resolve().parents[3]
                     / "benchmarks" / "history" / "fig1_history.jsonl")

#: sibling history for the cache-aware stepping benchmark (LU-count
#: ratios of ladder / ladder+stale runs against the fixed-step baseline)
ADAPTIVE_HISTORY_PATH = (Path(__file__).resolve().parents[3]
                         / "benchmarks" / "history" / "adaptive_history.jsonl")

#: gate only once this many runs of the same mode are on record
DEFAULT_MIN_HISTORY = 3

#: cap on how many most-recent runs enter the median (drift tolerance:
#: a genuinely faster codebase re-anchors after this many runs)
DEFAULT_WINDOW = 20

#: default regression threshold: fail below (1 - 0.20) * median
DEFAULT_THRESHOLD = 0.20


@dataclass
class PerfRegression:
    """One (case, method) series that fell below the gate."""

    case: str
    method: str
    mode: str
    rate: float
    median: float
    threshold: float

    def describe(self) -> str:
        drop = 100.0 * (1.0 - self.rate / self.median)
        return (
            f"{self.case}/{self.method} [{self.mode}]: "
            f"{self.rate:.0f} steps/s is {drop:.1f}% below the tracked "
            f"median {self.median:.0f} (allowed {100.0 * self.threshold:.0f}%)"
        )


def extract_rates(payload: Dict[str, object]) -> Dict[Tuple[str, str], float]:
    """Pull the cached-mode steps/sec of every (case, method) from a
    ``BENCH_hotpath.json`` payload."""
    rates: Dict[Tuple[str, str], float] = {}
    for row in payload.get("results", []):
        cached = row.get("cached", {})
        rate = cached.get("steps_per_second")
        if rate:
            rates[(str(row["case"]), str(row["method"]).lower())] = float(rate)
    return rates


def load_history(history_path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read the JSONL history (missing file = empty history)."""
    path = Path(history_path)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def record_entry(series: Dict[str, float], mode: str,
                 history_path: Union[str, Path]) -> Dict[str, object]:
    """Append one ``{recorded_at, mode, rates}`` entry to a JSONL history.

    The generic writer behind :func:`record_run`; other benchmarks (the
    Fig.-1 nnz sweep) append their own series through it so every history
    file stays readable by :func:`load_history`/:func:`tracked_medians`.
    """
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "recorded_at": time.time(),
        "mode": mode,
        "rates": {str(key): float(value) for key, value in series.items()},
    }
    with path.open("a") as fh:
        fh.write(json.dumps(entry) + "\n")
    return entry


def record_run(payload: Dict[str, object],
               history_path: Union[str, Path] = DEFAULT_HISTORY_PATH) -> Dict[str, object]:
    """Append one benchmark run to the history file and return the entry."""
    return record_entry(
        {f"{case}/{method}": rate
         for (case, method), rate in extract_rates(payload).items()},
        mode=str(payload.get("mode", "full")),
        history_path=history_path,
    )


def tracked_medians(history: List[Dict[str, object]], mode: str,
                    window: int = DEFAULT_WINDOW) -> Dict[str, Tuple[float, int]]:
    """Per series key (``case/method``): (median rate, #runs), same mode only."""
    series: Dict[str, List[float]] = {}
    for entry in history:
        if entry.get("mode") != mode:
            continue
        for key, rate in entry.get("rates", {}).items():
            series.setdefault(key, []).append(float(rate))
    return {key: (float(np.median(values[-window:])), len(values))
            for key, values in series.items()}


def check_perf_regression(
    payload: Dict[str, object],
    history_path: Union[str, Path] = DEFAULT_HISTORY_PATH,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
    window: int = DEFAULT_WINDOW,
) -> List[PerfRegression]:
    """Gate ``payload`` against the tracked history.

    Returns the list of regressed series (empty = pass).  Series with
    fewer than ``min_history`` recorded runs are skipped: a fresh
    machine or a renamed case must first accumulate a baseline.
    """
    mode = str(payload.get("mode", "full"))
    medians = tracked_medians(load_history(history_path), mode, window=window)
    regressions: List[PerfRegression] = []
    for (case, method), rate in extract_rates(payload).items():
        tracked = medians.get(f"{case}/{method}")
        if tracked is None:
            continue
        median, count = tracked
        if count < min_history or median <= 0.0:
            continue
        if rate < (1.0 - threshold) * median:
            regressions.append(PerfRegression(
                case=case, method=method, mode=mode, rate=rate,
                median=median, threshold=threshold,
            ))
    return regressions


def gate_payload_file(
    input_path: Union[str, Path],
    history_path: Union[str, Path] = DEFAULT_HISTORY_PATH,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
    record: bool = True,
) -> Tuple[List[PerfRegression], Optional[Dict[str, object]]]:
    """Convenience used by the CLI: check a payload file, then record it.

    The check runs against the history *before* this run is appended, so
    a regressed run cannot vote itself into its own baseline; the run is
    recorded afterwards either way (an honest history includes the slow
    runs -- the median absorbs them).
    """
    payload = json.loads(Path(input_path).read_text())
    regressions = check_perf_regression(
        payload, history_path, threshold=threshold, min_history=min_history,
    )
    entry = record_run(payload, history_path) if record else None
    return regressions, entry


def run_gate(
    input_path: Union[str, Path],
    history_path: Union[str, Path] = DEFAULT_HISTORY_PATH,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
    record: bool = True,
) -> int:
    """Gate + report + record in one call; returns the process exit code.

    The single reporting path behind both documented entry points
    (``bench_hotpath.py --history`` and ``python -m repro.verify
    --perf-check``), so their output and exit-code semantics cannot
    drift apart.
    """
    import sys

    regressions, entry = gate_payload_file(
        input_path, history_path, threshold=threshold,
        min_history=min_history, record=record,
    )
    if entry is not None:
        print(f"recorded {len(entry['rates'])} series into {history_path}")
    if regressions:
        for regression in regressions:
            print(f"PERF REGRESSION: {regression.describe()}", file=sys.stderr)
        return 1
    print(f"perf gate passed (threshold {100.0 * threshold:.0f}% "
          f"below tracked median)")
    return 0
