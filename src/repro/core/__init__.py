"""Core simulation layer: options, results and the simulator façade."""

from repro.core.options import SimOptions, NewtonOptions, DCOptions
from repro.core.results import SimulationResult, StepRecord, RunStatistics
from repro.core.rng import as_generator, derive_seed, spawn_seeds
from repro.core.simulator import TransientSimulator, simulate
from repro.core.workspace import LinearizationCache

__all__ = [
    "LinearizationCache",
    "as_generator",
    "derive_seed",
    "spawn_seeds",
    "SimOptions",
    "NewtonOptions",
    "DCOptions",
    "SimulationResult",
    "StepRecord",
    "RunStatistics",
    "TransientSimulator",
    "simulate",
]
