"""Junction diode model.

Static current follows the Shockley equation with a series-free ideal
junction; the exponential is linearized above a critical voltage so the
model never overflows and stays C1-continuous (the same device-level
safeguard SPICE uses in combination with junction limiting).

Charge storage combines a depletion (junction) capacitance with standard
forward-bias linearization above ``fc * vj`` and a diffusion charge
``tt * I(v)``; the stamped capacitance is the exact derivative of the
stamped charge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.devices.base import NonlinearDevice, NonlinearStamper

__all__ = ["DiodeModel", "Diode"]

#: Boltzmann constant times 300K over the electron charge (thermal voltage).
THERMAL_VOLTAGE = 0.02585


@dataclass
class DiodeModel:
    """Diode .model parameters (SPICE-compatible subset)."""

    name: str = "D"
    #: saturation current [A]
    isat: float = 1e-14
    #: emission coefficient
    n: float = 1.0
    #: transit time (diffusion charge) [s]
    tt: float = 0.0
    #: zero-bias junction capacitance [F]
    cj0: float = 0.0
    #: junction potential [V]
    vj: float = 1.0
    #: grading coefficient
    m: float = 0.5
    #: forward-bias depletion capacitance coefficient
    fc: float = 0.5
    #: minimum parallel conductance for numerical robustness [S]
    gmin: float = 1e-12

    def __post_init__(self):
        if self.isat <= 0:
            raise ValueError("diode saturation current must be positive")
        if self.n <= 0:
            raise ValueError("diode emission coefficient must be positive")
        if not (0.0 < self.fc < 1.0):
            raise ValueError("diode fc must lie in (0, 1)")

    @property
    def vte(self) -> float:
        """Effective thermal voltage ``n * kT/q``."""
        return self.n * THERMAL_VOLTAGE

    @property
    def v_crit(self) -> float:
        """Critical voltage for junction limiting (SPICE pnjlim)."""
        return self.vte * math.log(self.vte / (math.sqrt(2.0) * self.isat))


class Diode(NonlinearDevice):
    """Two-terminal junction diode between ``anode`` and ``cathode``."""

    #: exponent above which the I-V curve is linearized to avoid overflow
    _EXP_CLIP = 80.0

    def __init__(self, name: str, anode: str, cathode: str, model: DiodeModel | None = None,
                 area: float = 1.0):
        super().__init__(name, (anode, cathode))
        self.model = model if model is not None else DiodeModel()
        if area <= 0:
            raise ValueError(f"Diode {name}: area must be positive")
        self.area = float(area)

    # -- static characteristic -------------------------------------------------

    def current_and_conductance(self, vd: float) -> tuple:
        """Return ``(I, dI/dV)`` of the junction at voltage ``vd``."""
        mdl = self.model
        isat = mdl.isat * self.area
        vte = mdl.vte
        arg = vd / vte
        if arg > self._EXP_CLIP:
            # Linearize beyond the clip point to keep the model finite and C1.
            e = math.exp(self._EXP_CLIP)
            i = isat * (e * (1.0 + (arg - self._EXP_CLIP)) - 1.0)
            g = isat * e / vte
        else:
            e = math.exp(arg)
            i = isat * (e - 1.0)
            g = isat * e / vte
        i += mdl.gmin * vd
        g += mdl.gmin
        return i, g

    # -- charge storage ---------------------------------------------------------

    def charge_and_capacitance(self, vd: float) -> tuple:
        """Return ``(Q, dQ/dV)`` of the junction at voltage ``vd``."""
        mdl = self.model
        cj0 = mdl.cj0 * self.area
        q = 0.0
        c = 0.0
        if cj0 > 0.0:
            fcv = mdl.fc * mdl.vj
            if vd < fcv:
                # depletion region: q = cj0*vj/(1-m) * (1 - (1 - v/vj)^(1-m))
                arg = 1.0 - vd / mdl.vj
                q += cj0 * mdl.vj / (1.0 - mdl.m) * (1.0 - arg ** (1.0 - mdl.m))
                c += cj0 * arg ** (-mdl.m)
            else:
                # forward bias: linearized extension, C1-continuous at fc*vj
                f1 = mdl.vj / (1.0 - mdl.m) * (1.0 - (1.0 - mdl.fc) ** (1.0 - mdl.m))
                f2 = (1.0 - mdl.fc) ** (1.0 + mdl.m)
                f3 = 1.0 - mdl.fc * (1.0 + mdl.m)
                dv = vd - fcv
                q += cj0 * (f1 + (f3 * dv + 0.5 * mdl.m / mdl.vj * dv * dv) / f2)
                c += cj0 * (f3 + mdl.m * dv / mdl.vj) / f2
        if mdl.tt > 0.0:
            i, g = self.current_and_conductance(vd)
            q += mdl.tt * i
            c += mdl.tt * g
        return q, c

    # -- stamping ---------------------------------------------------------------

    def stamp_nonlinear(self, st: NonlinearStamper) -> None:
        a, c = self.nodes
        vd = st.voltage(a) - st.voltage(c)

        i, g = self.current_and_conductance(vd)
        st.add_current(a, i)
        st.add_current(c, -i)
        st.add_jacobian(a, a, g)
        st.add_jacobian(a, c, -g)
        st.add_jacobian(c, a, -g)
        st.add_jacobian(c, c, g)

        q, cap = self.charge_and_capacitance(vd)
        if q != 0.0 or cap != 0.0:
            st.add_charge(a, q)
            st.add_charge(c, -q)
            st.add_capacitance(a, a, cap)
            st.add_capacitance(a, c, -cap)
            st.add_capacitance(c, a, -cap)
            st.add_capacitance(c, c, cap)

    # -- Newton helpers ----------------------------------------------------------

    def limit_voltage(self, name: str, v_new: float, v_old: float) -> float:
        """SPICE pnjlim junction-voltage limiting for the anode node."""
        if name != self.nodes[0]:
            return v_new
        vte = self.model.vte
        v_crit = self.model.v_crit
        if v_new <= v_crit or abs(v_new - v_old) <= 2.0 * vte:
            return v_new
        if v_old > 0.0:
            arg = 1.0 + (v_new - v_old) / vte
            if arg > 0.0:
                return v_old + vte * math.log(arg)
            return v_crit
        return vte * math.log(v_new / vte) if v_new > 0.0 else v_crit
