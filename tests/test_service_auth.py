"""Bearer-token auth and restart-durable campaign records.

Two service-hardening behaviors share this module because both are
about a front end you can trust to come and go: requests without the
shared secret bounce with 401 (except the probe routes operators and
Prometheus need open), and campaign records live in the broker so a
restarted front end keeps serving ``GET /campaigns/<id>`` -- including
the NDJSON stream -- with byte-identical terminal payloads.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.server import ServiceServer

TOKEN = "s3cret-fleet-token"


def http(url, body=None, token=None, timeout=30.0):
    """(status, document) with optional bearer token."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        return exc.code, json.loads(body) if body else {}


@pytest.fixture
def secured(tmp_path):
    server = ServiceServer(data_dir=tmp_path / "svc", poll_interval=0.05,
                           auth_token=TOKEN)
    server.start()
    yield server
    server.shutdown()


SCENARIO = {"name": "s", "circuit": {"factory": "rc_ladder",
                                     "params": {"num_segments": 4}},
            "method": "er", "options": {"t_stop": 0.05e-9}}


class TestBearerAuth:
    def test_missing_token_is_401(self, secured):
        status, document = http(f"{secured.url}/stats")
        assert status == 401
        assert "bearer" in document["error"].lower()

    def test_wrong_token_is_401(self, secured):
        status, _ = http(f"{secured.url}/stats", token="wrong")
        assert status == 401
        status, _ = http(f"{secured.url}/scenarios",
                         {"scenario": SCENARIO}, token="wrong")
        assert status == 401

    def test_correct_token_passes(self, secured):
        status, document = http(f"{secured.url}/stats", token=TOKEN)
        assert status == 200
        assert "broker" in document

    def test_healthz_and_metrics_stay_open(self, secured):
        status, document = http(f"{secured.url}/healthz")
        assert status == 200 and document["ok"] is True
        request = urllib.request.Request(f"{secured.url}/metrics")
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.status == 200
            text = response.read().decode()
        assert "repro_server_requests_total" in text

    def test_auth_failures_are_counted(self, secured):
        http(f"{secured.url}/stats", token="wrong")
        http(f"{secured.url}/stats", token="wrong")
        request = urllib.request.Request(f"{secured.url}/metrics")
        with urllib.request.urlopen(request, timeout=30.0) as response:
            text = response.read().decode()
        for line in text.splitlines():
            if line.startswith("repro_server_auth_failures_total"):
                assert float(line.rsplit(" ", 1)[1]) >= 2
                break
        else:
            raise AssertionError("auth-failure counter not exported")

    def test_open_server_ignores_authorization_header(self, tmp_path):
        server = ServiceServer(data_dir=tmp_path / "open",
                               poll_interval=0.05)
        server.start()
        try:
            status, _ = http(f"{server.url}/stats", token="anything")
            assert status == 200
        finally:
            server.shutdown()


class TestCampaignPersistence:
    def wait_done(self, server, job_ids, deadline=120.0):
        import time
        end = time.time() + deadline
        while time.time() < end:
            depth = server.broker.depth()
            if depth["queued"] == 0 and depth["leased"] == 0:
                return
            time.sleep(0.1)
        raise AssertionError("campaign did not finish")

    def test_restarted_front_end_serves_identical_campaigns(self, tmp_path):
        from repro.campaign.backends._spawn import (
            spawn_module_worker,
            terminate_workers,
        )

        data = tmp_path / "svc"
        first = ServiceServer(data_dir=data, poll_interval=0.05)
        first.start()
        workers = [spawn_module_worker(
            "repro.service.worker",
            ["--data", str(data), "--poll", "0.05", "--exit-when-idle"])]
        try:
            status, submitted = http(f"{first.url}/campaigns", {
                "scenarios": [SCENARIO,
                              dict(SCENARIO, name="t",
                                   circuit={"factory": "rc_ladder",
                                            "params": {"num_segments": 5}})],
                "base_options": {"t_stop": 0.1e-9, "h_init": 2e-12,
                                 "store_states": False},
            })
            assert status == 202
            campaign_id = submitted["campaign_id"]
            self.wait_done(first, submitted["jobs"].values())

            status, before = http(f"{first.url}/campaigns/{campaign_id}")
            assert status == 200 and before["finished"] is True

            stream_url = f"/campaigns/{campaign_id}/stream"
            with urllib.request.urlopen(first.url + stream_url,
                                        timeout=60.0) as response:
                stream_before = response.read()
        finally:
            first.shutdown()
            terminate_workers(workers)

        # a brand-new front end process on the same data directory
        second = ServiceServer(data_dir=data, poll_interval=0.05)
        second.start()
        try:
            status, after = http(f"{second.url}/campaigns/{campaign_id}")
            assert status == 200
            assert after == before, "terminal payload must survive restart"

            with urllib.request.urlopen(second.url + stream_url,
                                        timeout=60.0) as response:
                assert response.read() == stream_before

            status, index = http(f"{second.url}/campaigns")
            assert campaign_id in {c["campaign_id"]
                                   for c in index["campaigns"]}
        finally:
            second.shutdown()

    def test_unknown_campaign_is_404_after_restart(self, tmp_path):
        data = tmp_path / "svc"
        first = ServiceServer(data_dir=data, poll_interval=0.05)
        first.start()
        first.shutdown()

        second = ServiceServer(data_dir=data, poll_interval=0.05)
        second.start()
        try:
            status, document = http(
                f"{second.url}/campaigns/deadbeef0000")
            assert status == 404
            assert "unknown campaign" in document["error"]
            assert "deadbeef0000" in document["error"]

            status, document = http(
                f"{second.url}/campaigns/deadbeef0000/stream")
            assert status == 404
        finally:
            second.shutdown()
