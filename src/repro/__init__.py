"""repro -- exponential-integrator circuit simulation framework.

A from-scratch Python reproduction of

    Zhuang, Yu, Kang, Wang, Cheng,
    "An Algorithmic Framework for Efficient Large-Scale Circuit Simulation
    Using Exponential Integrators", DAC 2015.

The package provides a complete SPICE-like transient simulation stack --
netlists, device models, MNA assembly, DC analysis, classic implicit
integrators -- plus the paper's contribution: the exponential
Rosenbrock-Euler (ER / ER-C) integrator driven by invert-Krylov-subspace
matrix-exponential products that only ever factorize the conductance
matrix ``G``.

Quick start::

    import repro

    ckt = repro.Circuit("rc line")
    ckt.add_vsource("Vin", "in", "0", repro.PULSE(0.0, 1.0, 0.0, 10e-12, 10e-12, 0.5e-9, 1e-9))
    ckt.add_resistor("R1", "in", "n1", 100.0)
    ckt.add_capacitor("C1", "n1", "0", 1e-12)
    result = repro.simulate(ckt, method="er", t_stop=1e-9, h_init=1e-12)
    print(result.voltage("n1"))
"""

from repro.circuit import (
    Circuit,
    DC,
    EXP,
    GROUND,
    MNASystem,
    PULSE,
    PWL,
    SIN,
    parse_netlist,
)
from repro.circuit.devices import Diode, DiodeModel, MOSFET, MOSFETModel
from repro.core import (
    DCOptions,
    NewtonOptions,
    RunStatistics,
    SimOptions,
    SimulationResult,
    TransientSimulator,
    simulate,
)
from repro.analysis import (
    DCResult,
    Signal,
    compare_runs,
    compare_waveforms,
    dc_operating_point,
)
from repro.integrators import (
    BackwardEulerNR,
    ExponentialRosenbrockEuler,
    ForwardEuler,
    Gear2NR,
    StandardKrylovExponential,
    TrapezoidalNR,
)
from repro.campaign import (
    CampaignResult,
    CircuitSpec,
    Scenario,
    ScenarioOutcome,
    corner_sweep,
    grid_sweep,
    monte_carlo_sweep,
    run_campaign,
)

__version__ = "0.1.0"

__all__ = [
    "Circuit",
    "GROUND",
    "MNASystem",
    "DC",
    "PWL",
    "PULSE",
    "SIN",
    "EXP",
    "parse_netlist",
    "Diode",
    "DiodeModel",
    "MOSFET",
    "MOSFETModel",
    "SimOptions",
    "NewtonOptions",
    "DCOptions",
    "SimulationResult",
    "RunStatistics",
    "TransientSimulator",
    "simulate",
    "DCResult",
    "dc_operating_point",
    "Signal",
    "compare_waveforms",
    "compare_runs",
    "BackwardEulerNR",
    "TrapezoidalNR",
    "Gear2NR",
    "ForwardEuler",
    "ExponentialRosenbrockEuler",
    "StandardKrylovExponential",
    "CampaignResult",
    "CircuitSpec",
    "Scenario",
    "ScenarioOutcome",
    "grid_sweep",
    "corner_sweep",
    "monte_carlo_sweep",
    "run_campaign",
    "__version__",
]
