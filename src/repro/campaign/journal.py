"""Append-only campaign outcome journal with periodic checkpoints.

Campaigns of thousands of scenarios cannot afford to hold "save the
results" until the end: a crash at scenario 4990/5000 must not cost the
first 4989.  The journal is a JSONL file the runner appends to as
outcomes arrive:

* a ``header`` line records the format version and the campaign context
  hash (base options + sample grid) -- resuming under a different
  context is refused, because the recorded outcomes would not be
  reproducible under it;
* one ``outcome`` line per finished scenario, keyed by the scenario's
  content hash;
* every ``checkpoint_every`` outcomes, a ``checkpoint`` line with the
  incremental aggregate snapshot, flushed and fsynced -- the durability
  points of the stream.

:meth:`CampaignJournal.replay` reads the file back, tolerating a
truncated final line (the signature of an interrupted write), and
returns the last recorded outcome per scenario hash --
``run_campaign(..., resume=True)`` adopts those and executes only the
remainder.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = ["CampaignJournal", "JournalContextError"]

#: bumped when the journal line layout changes
JOURNAL_FORMAT_VERSION = 1


class JournalContextError(RuntimeError):
    """Resuming a journal recorded under a different campaign context."""


class CampaignJournal:
    """One campaign's append-only outcome stream."""

    def __init__(self, path: Union[str, Path], checkpoint_every: int = 25):
        self.path = Path(path)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self._handle = None
        self._since_checkpoint = 0
        self._appended = 0

    # -- reading ------------------------------------------------------------------

    def exists(self) -> bool:
        return self.path.exists()

    def read_header(self) -> Optional[Dict[str, object]]:
        """Parse only the header line (cheap even on huge journals)."""
        if not self.path.exists():
            return None
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    return None
                return record if record.get("type") == "header" else None
        return None

    def replay(self) -> Tuple[Optional[Dict[str, object]], Dict[str, Dict[str, object]]]:
        """Return ``(header, outcomes_by_scenario_hash)`` from disk.

        Later lines win (a re-dispatched scenario may appear twice); a
        truncated trailing line -- the normal signature of an
        interrupted run -- is ignored rather than fatal.
        """
        header: Optional[Dict[str, object]] = None
        outcomes: Dict[str, Dict[str, object]] = {}
        if not self.path.exists():
            return header, outcomes
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    break  # truncated tail: everything before it is good
                kind = record.get("type")
                if kind == "header":
                    header = record
                elif kind == "outcome":
                    outcomes[str(record["hash"])] = record["data"]
        return header, outcomes

    # -- writing ------------------------------------------------------------------

    def start(self, context: str, resume: bool,
              metadata: Optional[Dict[str, object]] = None) -> None:
        """Open the journal for appending.

        A fresh campaign (``resume=False``) truncates any existing file;
        a resumed one validates that the stored header's context hash
        matches ``context`` and appends after the recorded outcomes.
        """
        if resume and self.path.exists():
            header = self.read_header()
            if header is not None and header.get("context") != context:
                raise JournalContextError(
                    f"journal {self.path} was recorded under context "
                    f"{header.get('context')!r}, this campaign is "
                    f"{context!r} (different base options or sample "
                    f"grid); refusing to mix outcomes"
                )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            if header is None:
                self._write_header(context, metadata)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
            self._write_header(context, metadata)

    def _write_header(self, context: str,
                      metadata: Optional[Dict[str, object]]) -> None:
        self._write_line({
            "type": "header",
            "format_version": JOURNAL_FORMAT_VERSION,
            "context": context,
            "metadata": dict(metadata or {}),
        })
        self.flush()

    def _write_line(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open; call start() first")
        self._handle.write(json.dumps(record, default=repr) + "\n")

    def append(self, scenario_hash: str, outcome: Dict[str, object],
               aggregates: Optional[Dict[str, object]] = None) -> None:
        """Record one outcome; checkpoint when the period elapses."""
        self._write_line({"type": "outcome", "hash": scenario_hash,
                          "data": outcome})
        self._appended += 1
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint(aggregates)

    def checkpoint(self, aggregates: Optional[Dict[str, object]] = None) -> None:
        """Write a durable checkpoint line (flush + fsync).

        ``done`` counts campaign-wide finished outcomes: the aggregates'
        total where available (it includes outcomes adopted on resume,
        which are never re-appended), this journal's append count as the
        fallback.
        """
        done = (aggregates or {}).get("total", self._appended)
        self._write_line({"type": "checkpoint", "done": done,
                          "aggregates": dict(aggregates or {})})
        self.flush()
        self._since_checkpoint = 0

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self, aggregates: Optional[Dict[str, object]] = None) -> None:
        """Final checkpoint (if outcomes arrived since the last) and close."""
        if self._handle is None:
            return
        if self._since_checkpoint:
            self.checkpoint(aggregates)
        self._handle.close()
        self._handle = None
